#include "baseline/abd.hpp"

namespace anon {

AbdRegister::AbdRegister(AsyncNet* net) : net_(net), replicas_(net->n()) {}

void AbdRegister::query(
    ProcId client, std::function<void(Tag, std::optional<Value>)> collected) {
  // Shared per-phase state: counts acks until majority, keeps the max.
  // The continuation lives HERE, once per phase — not copy-captured into
  // every per-replica closure, which would put one std::function heap
  // allocation back on each of the 2n messages of the phase.
  struct Phase {
    std::size_t acks = 0;
    bool fired = false;
    Tag best;
    std::optional<Value> best_value;
    std::function<void(Tag, std::optional<Value>)> collected;
  };
  auto ph = std::make_shared<Phase>();
  ph->collected = std::move(collected);
  const std::size_t need = majority();
  for (ProcId r = 0; r < net_->n(); ++r) {
    net_->send(client, r, [this, client, r, ph, need] {
      // Replica r answers (request delivery); the ack travels back.
      const Replica snapshot = replicas_[r];
      net_->send(r, client, [snapshot, ph, need] {
        if (ph->fired) return;
        ++ph->acks;
        if (ph->acks == 1 || snapshot.tag > ph->best) {
          ph->best = snapshot.tag;
          ph->best_value = snapshot.value;
        }
        if (ph->acks >= need) {
          ph->fired = true;
          ph->collected(ph->best, ph->best_value);
        }
      });
    });
  }
}

void AbdRegister::store(ProcId client, Tag tag, std::optional<Value> v,
                        std::function<void()> acked) {
  struct Phase {
    std::size_t acks = 0;
    bool fired = false;
    std::function<void()> acked;
  };
  auto ph = std::make_shared<Phase>();
  ph->acked = std::move(acked);
  const std::size_t need = majority();
  for (ProcId r = 0; r < net_->n(); ++r) {
    net_->send(client, r, [this, client, r, tag, v, ph, need] {
      if (tag > replicas_[r].tag) {
        replicas_[r].tag = tag;
        replicas_[r].value = v;
      }
      net_->send(r, client, [ph, need] {
        if (ph->fired) return;
        if (++ph->acks >= need) {
          ph->fired = true;
          ph->acked();
        }
      });
    });
  }
}

void AbdRegister::write(ProcId client, Value v,
                        std::function<void(std::uint64_t)> done) {
  query(client, [this, client, v, done](Tag best, std::optional<Value>) {
    Tag next{best.ts + 1, client};
    store(client, next, v,
          [this, done] { done(net_->events().now()); });
  });
}

void AbdRegister::read(
    ProcId client,
    std::function<void(std::optional<Value>, std::uint64_t)> done) {
  query(client, [this, client, done](Tag best, std::optional<Value> v) {
    // Write-back for atomicity, then return.
    store(client, best, v,
          [this, v, done] { done(v, net_->events().now()); });
  });
}

}  // namespace anon
