// The Ω leader failure detector, implemented with IDs by accusation
// counting (in the spirit of Aguilera et al. [1]) — the classic approach
// the paper's pseudo leader election replaces for anonymous systems.
//
// Each process tracks, per known ID, how often that process has been
// "accused" of silence (not heard from for `threshold` consecutive
// rounds).  Accusation counts are max-merged across messages.  Under ESS
// the eventual source stops being accused, everyone else accumulates
// accusations forever, and `leader()` (min accusations, tie-break min ID)
// stabilizes on an eventually-timely process.
#pragma once

#include <cstdint>
#include <map>
#include <set>

#include "giraf/types.hpp"

namespace anon {

class OmegaTracker {
 public:
  using Accusations = std::map<ProcId, std::uint64_t>;

  OmegaTracker() = default;
  OmegaTracker(ProcId self, Round threshold)
      : self_(self), threshold_(threshold) {
    last_heard_[self] = 0;
  }

  // Feed one round's observations (the IDs whose round-k messages arrived).
  void observe_round(Round k, const std::set<ProcId>& heard);

  // Max-merge accusation counts carried by a peer's message.
  void merge(const Accusations& other);

  // Current leader estimate: least-accused known ID (ties: smallest ID).
  ProcId leader() const;
  bool self_is_leader() const { return leader() == self_; }

  const Accusations& accusations() const { return accusations_; }

 private:
  ProcId self_ = 0;
  Round threshold_ = 2;
  std::map<ProcId, Round> last_heard_;
  Accusations accusations_;
};

}  // namespace anon
