#include "baseline/omega_consensus.hpp"

#include "common/check.hpp"

namespace anon {

OmegaConsensus::OmegaConsensus(Value initial, ProcId self,
                               Round silence_threshold, bool decide)
    : initial_(initial),
      self_(self),
      threshold_(silence_threshold),
      decide_(decide) {
  ANON_CHECK_MSG(!initial.is_bottom(), "⊥ is not a proposable value");
}

OmegaMessage OmegaConsensus::initialize() {
  val_ = initial_;
  omega_ = OmegaTracker(self_, threshold_);
  proposed_.clear();
  written_.clear();
  written_old_.clear();
  return OmegaMessage{proposed_, self_, omega_.accusations()};
}

OmegaMessage OmegaConsensus::compute(Round k,
                                     const Inboxes<OmegaMessage>& inboxes) {
  if (decision_.has_value()) return frozen_;

  const InboxView<OmegaMessage>& msgs = inbox_at(inboxes, k);
  ANON_CHECK(!msgs.empty());

  auto it = msgs.begin();
  written_ = it->proposed;
  for (++it; it != msgs.end(); ++it)
    set_intersect_inplace(written_, it->proposed);

  std::set<ProcId> heard;
  for (const OmegaMessage& m : msgs) {
    set_union_inplace(proposed_, m.proposed);
    heard.insert(m.id);
    omega_.merge(m.accusations);
  }
  omega_.observe_round(k, heard);

  if (k % 2 == 0) {
    if (decide_ && written_old_ == ValueSet{val_} &&
        subset_of(proposed_, ValueSet{val_, Value::Bottom()})) {
      decision_ = val_;
      proposed_ = {val_};
      frozen_ = OmegaMessage{proposed_, self_, omega_.accusations()};
      written_old_ = written_;
      return frozen_;
    }
    const ValueSet non_bottom = minus_bottom(written_);
    if (!non_bottom.empty()) val_ = *non_bottom.rbegin();
    // The oracle replaces the pseudo election: leaders propose, others ⊥.
    if (omega_.self_is_leader() ||
        subset_of(proposed_, ValueSet{val_, Value::Bottom()})) {
      proposed_ = {val_};
    } else {
      proposed_ = {Value::Bottom()};
    }
  }
  written_old_ = written_;

  return OmegaMessage{proposed_, self_, omega_.accusations()};
}

}  // namespace anon
