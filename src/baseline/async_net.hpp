// A minimal ID-based asynchronous point-to-point network (discrete-event),
// the substrate for the ABD baseline [Attiya, Bar-Noy, Dolev 1995].
//
// This is everything the paper's anonymous model takes away: processes have
// IDs, know n, and address each other — included as the known-network
// comparison point (E6/E9).
#pragma once

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/inplace_function.hpp"
#include "common/rng.hpp"
#include "core/calendar.hpp"
#include "env/faults.hpp"
#include "giraf/types.hpp"

namespace anon {

// Discrete-event loop over the shared ring-buffer calendar (core/
// calendar.hpp).  Events at the same time run in scheduling order — the
// calendar buckets are FIFO, so no explicit sequence tie-break is needed.
//
// Events are `InplaceFunction`s, not `std::function`s: the capture is
// stored inline in the calendar entry, so scheduling an event performs no
// heap allocation (the buffer is sized for the deepest closure in the ABD
// protocol stack — a store-phase lambda nested inside AsyncNet::send).
// Combined with `take_due_into`'s buffer recycling, the event loop is
// allocation-free in steady state (tests/inplace_function_test.cpp).
class EventQueue {
 public:
  static constexpr std::size_t kEventCapacity = 152;
  using Fn = InplaceFunction<void(), kEventCapacity>;

  void at(std::uint64_t time, Fn fn) {
    ANON_CHECK(time >= now_);
    calendar_.schedule(time, std::move(fn));
  }
  void after(std::uint64_t delay, Fn fn) { at(now_ + delay, std::move(fn)); }

  std::uint64_t now() const { return now_; }

  // Executes events in time order; returns executed count.
  std::uint64_t run(std::uint64_t max_events = 1000000) {
    std::uint64_t done = 0;
    while (done < max_events) {
      if (due_head_ >= due_.size()) {
        const auto next = calendar_.next_key();
        if (!next) break;
        now_ = *next;
        calendar_.advance_to(now_);
        calendar_.take_due_into(due_);  // recycles due_'s old capacity
        due_head_ = 0;
      }
      // Events an fn schedules at the current time land back in the
      // calendar bucket and run after this batch — FIFO preserved.
      Fn fn = std::move(due_[due_head_++]);
      if (due_head_ >= due_.size()) {
        due_.clear();
        due_head_ = 0;
      }
      fn();
      ++done;
    }
    return done;
  }

  bool empty() const { return calendar_.empty() && due_head_ >= due_.size(); }

 private:
  RoundCalendar<Fn> calendar_;
  std::vector<Fn> due_;       // batch taken for time now_, partially run
  std::size_t due_head_ = 0;  // next unexecuted entry in due_
  std::uint64_t now_ = 0;
};

class AsyncNet {
 public:
  AsyncNet(std::size_t n, std::uint64_t seed, std::uint64_t max_delay = 8)
      : n_(n), rng_(seed), max_delay_(max_delay), crashed_(n, false) {}

  EventQueue& events() { return eq_; }
  std::size_t n() const { return n_; }

  void crash(ProcId p) { crashed_[p] = true; }
  bool crashed(ProcId p) const { return crashed_[p]; }

  // Layers a seeded fault plan onto every subsequent send — the same
  // fault_stream_seed / hash_mix / hash_chance derivation the round-based
  // FaultPlan and the live JitterPolicy use, keyed on the message sequence
  // number instead of a round (this network has no rounds).  Loss and
  // sender omission drop the event, reorder stretches the delay by up to
  // max_extra_delay extra units, duplication schedules a second delivery
  // dup_extra_delay units after the first.  Churn has no meaning without
  // rounds and is rejected at spec validation.
  void set_faults(const FaultParams& params, std::uint64_t run_seed) {
    faults_ = params;
    fault_seed_ = fault_stream_seed(run_seed, params.seed);
    omission_.assign(n_, false);
    for (ProcId p : params.omission_senders)
      if (p < n_) omission_[p] = true;
    faults_active_ = params.active();
  }
  std::uint64_t fault_drops() const { return fault_drops_; }
  std::uint64_t fault_dups() const { return fault_dups_; }

  // Sends a message; `deliver` runs at the receiver unless it crashed by
  // delivery time (sender crash-mid-send is modeled by just not calling).
  // Templated on the callable so the caller's raw closure is stored inline
  // in the event (wrapping it in a type-erased function first would both
  // allocate and overflow the event's inline buffer with a nested one).
  template <typename F>
  void send(ProcId from, ProcId to, F deliver) {
    ++messages_;
    std::uint64_t d = 1 + rng_.below(max_delay_);
    if (faults_active_) {
      const std::uint64_t seq = messages_;  // fate key: (seq, from, to)
      if (omission_[from] ||
          hash_chance(hash_mix(fault_seed_ ^ kLossSalt, seq, from, to),
                      faults_.loss_prob)) {
        ++fault_drops_;
        return;
      }
      const std::uint64_t rh =
          hash_mix(fault_seed_ ^ kReorderSalt, seq, from, to);
      if (hash_chance(rh, faults_.reorder_prob))
        d += 1 + rh % std::max<std::uint64_t>(faults_.max_extra_delay, 1);
      if (hash_chance(hash_mix(fault_seed_ ^ kDupSalt, seq, from, to),
                      faults_.dup_prob)) {
        ++fault_dups_;
        eq_.after(d + std::max<Round>(faults_.dup_extra_delay, 1),
                  [this, to, deliver]() mutable {
                    if (!crashed_[to]) deliver();
                  });
      }
    }
    eq_.after(d, [this, to, deliver = std::move(deliver)]() mutable {
      if (!crashed_[to]) deliver();
    });
  }

  std::uint64_t messages_sent() const { return messages_; }

 private:
  static constexpr std::uint64_t kLossSalt = 0xab5e9d1ce11e0001ULL;
  static constexpr std::uint64_t kDupSalt = 0xab5e9d1ce11e0002ULL;
  static constexpr std::uint64_t kReorderSalt = 0xab5e9d1ce11e0003ULL;

  std::size_t n_;
  Rng rng_;
  std::uint64_t max_delay_;
  std::vector<bool> crashed_;
  EventQueue eq_;
  std::uint64_t messages_ = 0;
  FaultParams faults_;
  std::uint64_t fault_seed_ = 0;
  std::vector<bool> omission_;
  bool faults_active_ = false;
  std::uint64_t fault_drops_ = 0;
  std::uint64_t fault_dups_ = 0;
};

}  // namespace anon
