// A minimal ID-based asynchronous point-to-point network (discrete-event),
// the substrate for the ABD baseline [Attiya, Bar-Noy, Dolev 1995].
//
// This is everything the paper's anonymous model takes away: processes have
// IDs, know n, and address each other — included as the known-network
// comparison point (E6/E9).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/inplace_function.hpp"
#include "common/rng.hpp"
#include "core/calendar.hpp"
#include "giraf/types.hpp"

namespace anon {

// Discrete-event loop over the shared ring-buffer calendar (core/
// calendar.hpp).  Events at the same time run in scheduling order — the
// calendar buckets are FIFO, so no explicit sequence tie-break is needed.
//
// Events are `InplaceFunction`s, not `std::function`s: the capture is
// stored inline in the calendar entry, so scheduling an event performs no
// heap allocation (the buffer is sized for the deepest closure in the ABD
// protocol stack — a store-phase lambda nested inside AsyncNet::send).
// Combined with `take_due_into`'s buffer recycling, the event loop is
// allocation-free in steady state (tests/inplace_function_test.cpp).
class EventQueue {
 public:
  static constexpr std::size_t kEventCapacity = 152;
  using Fn = InplaceFunction<void(), kEventCapacity>;

  void at(std::uint64_t time, Fn fn) {
    ANON_CHECK(time >= now_);
    calendar_.schedule(time, std::move(fn));
  }
  void after(std::uint64_t delay, Fn fn) { at(now_ + delay, std::move(fn)); }

  std::uint64_t now() const { return now_; }

  // Executes events in time order; returns executed count.
  std::uint64_t run(std::uint64_t max_events = 1000000) {
    std::uint64_t done = 0;
    while (done < max_events) {
      if (due_head_ >= due_.size()) {
        const auto next = calendar_.next_key();
        if (!next) break;
        now_ = *next;
        calendar_.advance_to(now_);
        calendar_.take_due_into(due_);  // recycles due_'s old capacity
        due_head_ = 0;
      }
      // Events an fn schedules at the current time land back in the
      // calendar bucket and run after this batch — FIFO preserved.
      Fn fn = std::move(due_[due_head_++]);
      if (due_head_ >= due_.size()) {
        due_.clear();
        due_head_ = 0;
      }
      fn();
      ++done;
    }
    return done;
  }

  bool empty() const { return calendar_.empty() && due_head_ >= due_.size(); }

 private:
  RoundCalendar<Fn> calendar_;
  std::vector<Fn> due_;       // batch taken for time now_, partially run
  std::size_t due_head_ = 0;  // next unexecuted entry in due_
  std::uint64_t now_ = 0;
};

class AsyncNet {
 public:
  AsyncNet(std::size_t n, std::uint64_t seed, std::uint64_t max_delay = 8)
      : n_(n), rng_(seed), max_delay_(max_delay), crashed_(n, false) {}

  EventQueue& events() { return eq_; }
  std::size_t n() const { return n_; }

  void crash(ProcId p) { crashed_[p] = true; }
  bool crashed(ProcId p) const { return crashed_[p]; }

  // Sends a message; `deliver` runs at the receiver unless it crashed by
  // delivery time (sender crash-mid-send is modeled by just not calling).
  // Templated on the callable so the caller's raw closure is stored inline
  // in the event (wrapping it in a type-erased function first would both
  // allocate and overflow the event's inline buffer with a nested one).
  template <typename F>
  void send(ProcId from, ProcId to, F deliver) {
    (void)from;
    ++messages_;
    const std::uint64_t d = 1 + rng_.below(max_delay_);
    eq_.after(d, [this, to, deliver = std::move(deliver)]() mutable {
      if (!crashed_[to]) deliver();
    });
  }

  std::uint64_t messages_sent() const { return messages_; }

 private:
  std::size_t n_;
  Rng rng_;
  std::uint64_t max_delay_;
  std::vector<bool> crashed_;
  EventQueue eq_;
  std::uint64_t messages_ = 0;
};

}  // namespace anon
