#include "baseline/omega.hpp"

namespace anon {

void OmegaTracker::observe_round(Round k, const std::set<ProcId>& heard) {
  for (ProcId p : heard) last_heard_[p] = k;
  if (accusations_.count(self_) == 0) accusations_[self_] = 0;
  for (auto& [p, last] : last_heard_) {
    if (p == self_) continue;
    if (k >= last + threshold_) {
      ++accusations_[p];
      last = k;  // restart the silence window (one accusation per lapse)
    } else if (accusations_.count(p) == 0) {
      accusations_[p] = 0;
    }
  }
}

void OmegaTracker::merge(const Accusations& other) {
  for (const auto& [p, c] : other) {
    auto it = accusations_.find(p);
    if (it == accusations_.end() || it->second < c) accusations_[p] = c;
  }
}

ProcId OmegaTracker::leader() const {
  ProcId best = self_;
  std::uint64_t best_acc = ~0ULL;
  for (const auto& [p, c] : accusations_) {
    if (c < best_acc || (c == best_acc && p < best)) {
      best = p;
      best_acc = c;
    }
  }
  return best;
}

}  // namespace anon
