// ABD majority-quorum atomic register emulation [2], the classic
// known-network baseline: requires IDs, knowledge of n, and a correct
// MAJORITY — everything Algorithm 4's weak-set register does without
// (the weak-set tolerates any number of crashes, given MS synchrony).
//
// Write(v): query a majority for timestamps; write (max_ts+1, writer_id, v)
//           to a majority.
// Read():   query a majority; pick the (ts, wid)-maximal value; write it
//           back to a majority (the classic atomicity fix); return it.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "baseline/async_net.hpp"
#include "common/value.hpp"

namespace anon {

class AbdRegister {
 public:
  AbdRegister(AsyncNet* net);

  // Client operations; callbacks fire at completion (never, if a majority
  // is unreachable — exactly ABD's liveness limit, see tests/E6).
  void write(ProcId client, Value v, std::function<void(std::uint64_t end_time)> done);
  void read(ProcId client,
            std::function<void(std::optional<Value>, std::uint64_t end_time)> done);

  std::uint64_t messages() const { return net_->messages_sent(); }

 private:
  struct Tag {
    std::uint64_t ts = 0;
    ProcId wid = 0;
    friend auto operator<=>(const Tag&, const Tag&) = default;
  };
  struct Replica {
    Tag tag;
    std::optional<Value> value;
  };

  std::size_t majority() const { return net_->n() / 2 + 1; }

  // Phase helper: ask all replicas, invoke `collected` once a majority of
  // answers arrived (with the max tag/value seen).
  void query(ProcId client,
             std::function<void(Tag, std::optional<Value>)> collected);
  void store(ProcId client, Tag tag, std::optional<Value> v,
             std::function<void()> acked);

  AsyncNet* net_;
  std::vector<Replica> replicas_;
};

}  // namespace anon
