// Ω-based consensus WITH process IDs — the baseline that quantifies the
// cost of anonymity (E9).
//
// Same skeleton as Algorithm 3 (written values, ⊥ for non-leaders, decide
// on a stable unanimous estimate) but the leader predicate comes from the
// OmegaTracker oracle over IDs instead of the history-counter pseudo
// election.  Everything Algorithm 3 pays for anonymity — growing
// histories, per-history counters — disappears; messages carry an ID and
// a bounded accusation map.
#pragma once

#include <cstdint>
#include <map>
#include <optional>

#include "baseline/omega.hpp"
#include "common/value.hpp"
#include "giraf/automaton.hpp"
#include "net/lockstep.hpp"

namespace anon {

struct OmegaMessage {
  ValueSet proposed;
  ProcId id = 0;
  OmegaTracker::Accusations accusations;

  friend bool operator==(const OmegaMessage& a, const OmegaMessage& b) {
    return a.proposed == b.proposed && a.id == b.id &&
           a.accusations == b.accusations;
  }
  friend bool operator<(const OmegaMessage& a, const OmegaMessage& b) {
    if (a.id != b.id) return a.id < b.id;
    if (a.proposed != b.proposed) return a.proposed < b.proposed;
    return a.accusations < b.accusations;
  }
};

template <>
struct MessageDigest<OmegaMessage> {
  static std::uint64_t of(const OmegaMessage& m) {
    std::uint64_t h = stable_hash(m.proposed);
    h = detail::mix_digest(h, m.id);
    for (const auto& [p, c] : m.accusations) {
      h = detail::mix_digest(h, p);
      h = detail::mix_digest(h, c);
    }
    return h;
  }
};

template <>
struct MessageSizeOf<OmegaMessage> {
  static std::size_t size(const OmegaMessage& m) {
    return 16 + 8 * m.proposed.size() + 8 + 16 * m.accusations.size();
  }
};

class OmegaConsensus final : public Automaton<OmegaMessage> {
 public:
  // `decide=false` disables the decision test (leader-convergence
  // experiments, mirroring EssConsensus::Options).
  OmegaConsensus(Value initial, ProcId self, Round silence_threshold = 2,
                 bool decide = true);

  OmegaMessage initialize() override;
  OmegaMessage compute(Round k, const Inboxes<OmegaMessage>& inboxes) override;
  std::optional<Value> decision() const override { return decision_; }

  ProcId current_leader() const { return omega_.leader(); }
  const Value& val() const { return val_; }

 private:
  Value initial_;
  ProcId self_;
  Round threshold_;
  bool decide_;

  OmegaTracker omega_;
  Value val_;
  ValueSet proposed_;
  ValueSet written_;
  ValueSet written_old_;
  std::optional<Value> decision_;
  OmegaMessage frozen_;
};

}  // namespace anon
