#include "baseline/async_net.hpp"

// Header-only; this TU exists to give the target a compiled artifact.

namespace anon {
static_assert(sizeof(EventQueue) > 0);
}  // namespace anon
