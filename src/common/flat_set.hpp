// A sorted small-buffer flat set — the hot-path replacement for the
// red-black-tree `std::set` in message payloads and algorithm state.
//
// Storage is a single contiguous, always-sorted array of unique elements.
// The first `InlineN` elements live inside the object (no allocation at
// all for the small sets the paper's algorithms exchange: |PROPOSED| is
// bounded by the number of distinct initial values, usually 2–8); larger
// sets spill to one heap block.  `clear()` keeps capacity, so a set that
// is rebuilt every round (WRITTEN, the per-round intersection) reaches a
// zero-allocation steady state.
//
// Set algebra (union / intersection / subset) is merge-based: linear
// two-pointer passes over the sorted arrays instead of per-element tree
// probes — O(|a|+|b|) comparisons, no node allocations.  See DESIGN.md
// ("message representation") for the before/after complexity table.
//
// Restricted to trivially copyable element types so inserts can memmove
// and growth can memcpy; `Value` (16 bytes) qualifies.
#pragma once

#include <algorithm>
#include <compare>
#include <cstddef>
#include <cstring>
#include <initializer_list>
#include <iterator>
#include <memory>
#include <type_traits>
#include <utility>

namespace anon {

template <typename T, std::size_t InlineN = 4>
class FlatSet {
  static_assert(std::is_trivially_copyable_v<T>,
                "FlatSet requires trivially copyable elements");
  static_assert(InlineN >= 1);

 public:
  using value_type = T;
  using const_iterator = const T*;
  using const_reverse_iterator = std::reverse_iterator<const T*>;

  FlatSet() = default;

  FlatSet(std::initializer_list<T> init) {
    for (const T& v : init) insert(v);
  }

  FlatSet(const FlatSet& other) { assign(other); }

  FlatSet(FlatSet&& other) noexcept { steal(std::move(other)); }

  FlatSet& operator=(const FlatSet& other) {
    if (this != &other) assign(other);
    return *this;
  }

  FlatSet& operator=(FlatSet&& other) noexcept {
    if (this != &other) steal(std::move(other));
    return *this;
  }

  const_iterator begin() const { return data(); }
  const_iterator end() const { return data() + size_; }
  const_reverse_iterator rbegin() const {
    return const_reverse_iterator(end());
  }
  const_reverse_iterator rend() const {
    return const_reverse_iterator(begin());
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  // Keeps capacity: a set rebuilt every round stops allocating.
  void clear() { size_ = 0; }

  std::pair<const_iterator, bool> insert(const T& v) {
    T* base = data();
    T* pos = std::lower_bound(base, base + size_, v);
    if (pos != base + size_ && *pos == v) return {pos, false};
    const std::size_t at = static_cast<std::size_t>(pos - base);
    if (size_ == cap_) {
      grow(cap_ * 2);
      base = data();
      pos = base + at;
    }
    std::memmove(static_cast<void*>(pos + 1), static_cast<const void*>(pos),
                 (size_ - at) * sizeof(T));
    *pos = v;
    ++size_;
    return {pos, true};
  }

  template <typename It>
  void insert(It first, It last) {
    for (; first != last; ++first) insert(*first);
  }

  std::size_t erase(const T& v) {
    T* base = data();
    T* pos = std::lower_bound(base, base + size_, v);
    if (pos == base + size_ || !(*pos == v)) return 0;
    std::memmove(static_cast<void*>(pos), static_cast<const void*>(pos + 1),
                 (size_ - static_cast<std::size_t>(pos - base) - 1) * sizeof(T));
    --size_;
    return 1;
  }

  bool contains(const T& v) const {
    const T* pos = std::lower_bound(begin(), end(), v);
    return pos != end() && *pos == v;
  }

  std::size_t count(const T& v) const { return contains(v) ? 1 : 0; }

  // --- Merge-based set algebra (all operands sorted-unique by invariant).

  // this := this ∪ other, via one backward in-place merge (no temporary).
  void union_with(const FlatSet& other) {
    if (other.empty()) return;
    if (empty()) {
      assign(other);
      return;
    }
    // Count elements of `other` not already present.
    std::size_t fresh = 0;
    {
      const T* a = begin();
      const T* ae = end();
      for (const T& v : other) {
        while (a != ae && *a < v) ++a;
        if (a == ae || v < *a) ++fresh;
      }
    }
    if (fresh == 0) return;
    reserve(size_ + fresh);
    // Merge from the back so nothing is overwritten before it is read.
    T* base = data();
    std::ptrdiff_t i = static_cast<std::ptrdiff_t>(size_) - 1;
    std::ptrdiff_t j = static_cast<std::ptrdiff_t>(other.size()) - 1;
    std::ptrdiff_t out = static_cast<std::ptrdiff_t>(size_ + fresh) - 1;
    const T* ob = other.begin();
    while (j >= 0) {
      if (i >= 0 && ob[j] < base[i]) {
        base[out--] = base[i--];
      } else if (i >= 0 && !(base[i] < ob[j])) {  // equal: keep one
        base[out--] = base[i--];
        --j;
      } else {
        base[out--] = ob[j--];
      }
    }
    size_ += fresh;
  }

  // this := this ∩ other, by in-place compaction (no allocation).
  void intersect_with(const FlatSet& other) {
    T* base = data();
    const T* b = other.begin();
    const T* be = other.end();
    std::size_t out = 0;
    for (std::size_t i = 0; i < size_; ++i) {
      while (b != be && *b < base[i]) ++b;
      if (b == be) break;
      if (!(base[i] < *b)) base[out++] = base[i];
    }
    size_ = out;
  }

  // True iff this ⊆ other.
  bool subset_of(const FlatSet& other) const {
    const T* b = other.begin();
    const T* be = other.end();
    for (const T& v : *this) {
      while (b != be && *b < v) ++b;
      if (b == be || v < *b) return false;
    }
    return true;
  }

  friend bool operator==(const FlatSet& a, const FlatSet& b) {
    return a.size_ == b.size_ && std::equal(a.begin(), a.end(), b.begin());
  }

  // Lexicographic, matching std::set's container order.
  friend bool operator<(const FlatSet& a, const FlatSet& b) {
    return std::lexicographical_compare(a.begin(), a.end(), b.begin(),
                                        b.end());
  }

 private:
  const T* data() const { return heap_ ? heap_.get() : inline_; }
  T* data() { return heap_ ? heap_.get() : inline_; }

  void reserve(std::size_t n) {
    if (n > cap_) grow(std::max(n, cap_ * 2));
  }

  void grow(std::size_t new_cap) {
    // for_overwrite: the capacity is filled by memcpy, don't zero it first.
    auto bigger = std::make_unique_for_overwrite<T[]>(new_cap);
    std::memcpy(static_cast<void*>(bigger.get()),
                static_cast<const void*>(data()), size_ * sizeof(T));
    heap_ = std::move(bigger);
    cap_ = new_cap;
  }

  void assign(const FlatSet& other) {
    if (other.size_ > cap_) {
      heap_ = std::make_unique_for_overwrite<T[]>(other.size_);
      cap_ = other.size_;
    }
    std::memcpy(static_cast<void*>(data()),
                static_cast<const void*>(other.data()),
                other.size_ * sizeof(T));
    size_ = other.size_;
  }

  void steal(FlatSet&& other) {
    if (other.heap_) {
      heap_ = std::move(other.heap_);
      cap_ = other.cap_;
      size_ = other.size_;
    } else {
      heap_.reset();
      cap_ = InlineN;
      size_ = other.size_;
      std::memcpy(static_cast<void*>(inline_),
                  static_cast<const void*>(other.inline_),
                  other.size_ * sizeof(T));
    }
    other.heap_.reset();
    other.cap_ = InlineN;
    other.size_ = 0;
  }

  std::size_t size_ = 0;
  std::size_t cap_ = InlineN;
  std::unique_ptr<T[]> heap_;  // engaged iff cap_ > InlineN
  T inline_[InlineN];
};

}  // namespace anon
