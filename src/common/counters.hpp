// Per-history counters C[H] of Algorithm 3 (§4.1).
//
// Semantics from the paper:
//   * C maps every history to a natural number, defaulting to 0; "no memory
//     is allocated for histories it has not yet heard of".
//   * Line 8:  ∀H, C[H] := min over all round messages m of m.C[H]
//     (absent entries read as 0, so the min-merge keeps exactly the keys
//     present in *every* message, with the minimum value — everything else
//     collapses to the default 0 and is dropped).
//   * Line 9:  for every message m, C[m.HISTORY] := 1 + max{ C[H] :
//     H prefix of m.HISTORY }.  Because histories are cons lists, the
//     prefixes of m.HISTORY are exactly its ancestor chain, so the max is a
//     walk up the chain probing the map.
//
// The map is small in steady state: min-merge intersects key sets, so only
// histories relayed by everybody (the live ⋄-proposer histories) survive.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/history.hpp"

namespace anon {

class CounterMap {
 public:
  using Map = std::map<History, std::uint64_t>;

  CounterMap() = default;

  // C[H] with default 0.
  std::uint64_t get(const History& h) const {
    auto it = m_.find(h);
    return it == m_.end() ? 0 : it->second;
  }

  // Sets C[H]; storing 0 erases (0 ≡ absent, keeps equality canonical).
  void set(const History& h, std::uint64_t c) {
    if (c == 0)
      m_.erase(h);
    else
      m_[h] = c;
  }

  bool empty() const { return m_.empty(); }
  std::size_t size() const { return m_.size(); }
  const Map& entries() const { return m_; }

  // Line 8: pointwise min over `maps` (absent = 0).  With k maps the result
  // keeps only keys present in all k, at the min value.
  static CounterMap min_merge(const std::vector<const CounterMap*>& maps);

  // Line 9 for one message history: C[h] := 1 + max{C[p] : p prefix of h}
  // (reflexive — h itself counts as one of its prefixes).
  void bump_prefix_max(const History& h);

  // max{C[p] : p prefix of h, including h}; 0 if none recorded.
  std::uint64_t prefix_max(const History& h) const;

  // True iff C[h] >= C[H] for all H (the leader predicate of Line 15 /
  // Definition "leader(k)").
  bool is_max(const History& h) const;

  // Largest counter value present (0 if empty).
  std::uint64_t max_value() const;

  // Extension (not in the paper): drops every entry H dominated by a
  // strict extension H' (H prefix of H', C[H'] >= C[H]).  A dominated
  // prefix can never become the argmax again, and prefix_max inheritance
  // still works through the surviving extension — so the leader-election
  // semantics are preserved while the map stays O(#live branches) instead
  // of accumulating one stale source-prefix per round (see E10).
  // Returns the number of erased entries.
  std::size_t gc_dominated_prefixes();

  // Histories whose counter equals max_value() (empty map → none).
  std::vector<History> argmax() const;

  friend bool operator==(const CounterMap& a, const CounterMap& b) {
    return a.m_ == b.m_;
  }
  friend bool operator<(const CounterMap& a, const CounterMap& b) {
    return a.m_ < b.m_;
  }

  std::string to_string() const;

 private:
  Map m_;
};

}  // namespace anon
