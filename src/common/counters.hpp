// Per-history counters C[H] of Algorithm 3 (§4.1).
//
// Semantics from the paper:
//   * C maps every history to a natural number, defaulting to 0; "no memory
//     is allocated for histories it has not yet heard of".
//   * Line 8:  ∀H, C[H] := min over all round messages m of m.C[H]
//     (absent entries read as 0, so the min-merge keeps exactly the keys
//     present in *every* message, with the minimum value — everything else
//     collapses to the default 0 and is dropped).
//   * Line 9:  for every message m, C[m.HISTORY] := 1 + max{ C[H] :
//     H prefix of m.HISTORY }.  Because histories are cons lists, the
//     prefixes of m.HISTORY are exactly its ancestor chain, so the max is a
//     walk up the chain probing the map.
//
// The map is small in steady state: min-merge intersects key sets, so only
// histories relayed by everybody (the live ⋄-proposer histories) survive.
//
// Representation: a flat vector of (history, count) entries sorted by the
// history order (length, digest, sequence).  Lookups are binary searches
// over cheap integer-first comparisons; min-merge is a linear multi-way
// merge (all operands share the sort order); and — because `History` is a
// pointer wrapper — the entries are trivially copyable, so copying the
// map is one buffer memcpy: the per-round message copies of Algorithm 3
// stop costing R red-black-tree node allocations.  Iteration order is
// identical to the previous `std::map`, which keeps traces and reports
// byte-identical.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/history.hpp"

namespace anon {

class CounterMap {
 public:
  using Entry = std::pair<History, std::uint64_t>;
  using Map = std::vector<Entry>;

  CounterMap() = default;

  // C[H] with default 0.
  std::uint64_t get(const History& h) const {
    auto it = find(h);
    return it != m_.end() && it->first == h ? it->second : 0;
  }

  // Sets C[H]; storing 0 erases (0 ≡ absent, keeps equality canonical).
  void set(const History& h, std::uint64_t c) {
    auto it = find(h);
    const bool present = it != m_.end() && it->first == h;
    if (c == 0) {
      if (present) m_.erase(it);
    } else if (present) {
      it->second = c;
    } else {
      m_.insert(it, Entry{h, c});
    }
  }

  bool empty() const { return m_.empty(); }
  std::size_t size() const { return m_.size(); }
  const Map& entries() const { return m_; }

  // Line 8: pointwise min over `maps` (absent = 0).  With k maps the result
  // keeps only keys present in all k, at the min value.
  static CounterMap min_merge(const std::vector<const CounterMap*>& maps);

  // Line 9 for one message history: C[h] := 1 + max{C[p] : p prefix of h}
  // (reflexive — h itself counts as one of its prefixes).
  void bump_prefix_max(const History& h);

  // max{C[p] : p prefix of h, including h}; 0 if none recorded.
  std::uint64_t prefix_max(const History& h) const;

  // True iff C[h] >= C[H] for all H (the leader predicate of Line 15 /
  // Definition "leader(k)").
  bool is_max(const History& h) const;

  // Largest counter value present (0 if empty).
  std::uint64_t max_value() const;

  // Deterministic content digest (fold over the sorted entries).  Equal
  // maps digest equally; used for cohort state keying (net/cohort.hpp).
  // Multiplicity note: the cohort engine hands Algorithm 3's line-8
  // min-merge ONE operand per equivalence class — min over m identical
  // maps is the map itself, so weighting the merge by cohort multiplicity
  // would be the identity and the collapse is exact.
  std::uint64_t digest() const;

  // Extension (not in the paper): drops every entry H dominated by a
  // strict extension H' (H prefix of H', C[H'] >= C[H]).  A dominated
  // prefix can never become the argmax again, and prefix_max inheritance
  // still works through the surviving extension — so the leader-election
  // semantics are preserved while the map stays O(#live branches) instead
  // of accumulating one stale source-prefix per round (see E10).
  // Returns the number of erased entries.
  std::size_t gc_dominated_prefixes();

  // Histories whose counter equals max_value() (empty map → none).
  std::vector<History> argmax() const;

  friend bool operator==(const CounterMap& a, const CounterMap& b) {
    return a.m_.size() == b.m_.size() &&
           std::equal(a.m_.begin(), a.m_.end(), b.m_.begin(),
                      [](const Entry& x, const Entry& y) {
                        return x.first == y.first && x.second == y.second;
                      });
  }
  friend bool operator<(const CounterMap& a, const CounterMap& b) {
    return std::lexicographical_compare(
        a.m_.begin(), a.m_.end(), b.m_.begin(), b.m_.end(),
        [](const Entry& x, const Entry& y) {
          if (x.first < y.first) return true;
          if (y.first < x.first) return false;
          return x.second < y.second;
        });
  }

  std::string to_string() const;

 private:
  Map::iterator find(const History& h) {
    return std::lower_bound(
        m_.begin(), m_.end(), h,
        [](const Entry& e, const History& key) { return e.first < key; });
  }
  Map::const_iterator find(const History& h) const {
    return std::lower_bound(
        m_.begin(), m_.end(), h,
        [](const Entry& e, const History& key) { return e.first < key; });
  }

  Map m_;
};

}  // namespace anon
