// Lightweight invariant checking used throughout the library.
//
// ANON_CHECK is active in all build types: simulator correctness is the
// product here, so we never compile assertions out.  Failures throw
// `anon::CheckFailure` (rather than aborting) so tests can assert on them.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace anon {

class CheckFailure : public std::logic_error {
 public:
  explicit CheckFailure(const std::string& what) : std::logic_error(what) {}
};

[[noreturn]] inline void check_fail(const char* expr, const char* file,
                                    int line, const std::string& msg) {
  std::ostringstream os;
  os << "ANON_CHECK failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckFailure(os.str());
}

}  // namespace anon

#define ANON_CHECK(expr)                                              \
  do {                                                                \
    if (!(expr)) ::anon::check_fail(#expr, __FILE__, __LINE__, "");   \
  } while (0)

#define ANON_CHECK_MSG(expr, msg)                                        \
  do {                                                                   \
    if (!(expr)) ::anon::check_fail(#expr, __FILE__, __LINE__, (msg));   \
  } while (0)
