#include "common/counters.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace anon {

CounterMap CounterMap::min_merge(const std::vector<const CounterMap*>& maps) {
  CounterMap out;
  if (maps.empty()) return out;
  // Keys present in every map survive with the min value; a key absent from
  // any map reads 0 there, so its min is 0 ≡ absent.  All operands are
  // sorted the same way, so each map contributes one monotone cursor and
  // the whole merge is linear in the operand sizes.
  // cursor[0] is unused — maps[0] is the iteration driver below.
  std::vector<Map::const_iterator> cursor(maps.size());
  for (std::size_t i = 1; i < maps.size(); ++i) cursor[i] = maps[i]->m_.begin();
  out.m_.reserve(maps[0]->m_.size());
  for (const auto& [h, c] : maps[0]->m_) {
    std::uint64_t mn = c;
    bool everywhere = true;
    for (std::size_t i = 1; i < maps.size(); ++i) {
      auto& it = cursor[i];
      const auto end = maps[i]->m_.end();
      while (it != end && it->first < h) ++it;
      if (it == end || !(it->first == h)) {
        everywhere = false;
        break;
      }
      mn = std::min(mn, it->second);
    }
    if (everywhere && mn > 0) out.m_.emplace_back(h, mn);
  }
  return out;
}

std::uint64_t CounterMap::prefix_max(const History& h) const {
  ANON_CHECK(!h.empty());
  std::uint64_t best = 0;
  // Walk the ancestor chain (all prefixes, newest to oldest, incl. h).
  for (History p = h; !p.empty(); p = p.parent()) {
    best = std::max(best, get(p));
  }
  return best;
}

void CounterMap::bump_prefix_max(const History& h) {
  set(h, 1 + prefix_max(h));
}

bool CounterMap::is_max(const History& h) const {
  const std::uint64_t mine = get(h);
  for (const auto& [other, c] : m_)
    if (c > mine) return false;
  return true;
}

std::size_t CounterMap::gc_dominated_prefixes() {
  std::size_t erased = 0;
  for (auto it = m_.begin(); it != m_.end();) {
    bool dominated = false;
    for (const auto& [other, c] : m_) {
      if (other == it->first) continue;
      if (it->first.is_prefix_of(other) && c >= it->second) {
        dominated = true;
        break;
      }
    }
    if (dominated) {
      it = m_.erase(it);
      ++erased;
    } else {
      ++it;
    }
  }
  return erased;
}

std::uint64_t CounterMap::digest() const {
  // Same mixing step as the message-digest fold (giraf/inbox.hpp), inlined
  // here so common/ stays below giraf/ in the layering.
  auto mix = [](std::uint64_t h, std::uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    return h;
  };
  std::uint64_t h = 0xc3a5c85c97cb3127ULL ^ m_.size();
  for (const auto& [hist, c] : m_) {
    h = mix(h, hist.digest());
    h = mix(h, hist.length());
    h = mix(h, c);
  }
  return h;
}

std::uint64_t CounterMap::max_value() const {
  std::uint64_t best = 0;
  for (const auto& [h, c] : m_) best = std::max(best, c);
  return best;
}

std::vector<History> CounterMap::argmax() const {
  std::vector<History> out;
  const std::uint64_t best = max_value();
  if (best == 0) return out;
  for (const auto& [h, c] : m_)
    if (c == best) out.push_back(h);
  return out;
}

std::string CounterMap::to_string() const {
  std::string out = "{";
  bool first = true;
  for (const auto& [h, c] : m_) {
    if (!first) out += ", ";
    out += h.to_string() + ":" + std::to_string(c);
    first = false;
  }
  return out + "}";
}

}  // namespace anon
