#include "common/history.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace anon {

namespace {
std::uint64_t mix(std::uint64_t h, std::uint64_t x) {
  // 128-bit-ish mixing of a rolling digest with the next element hash.
  h ^= x + 0x9e3779b97f4a7c15ULL + (h << 12) + (h >> 4);
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  return h;
}
}  // namespace

bool operator<(const History& a, const History& b) {
  if (a.node_ == b.node_) return false;
  if (a.length() != b.length()) return a.length() < b.length();
  if (a.digest() != b.digest()) return a.digest() < b.digest();
  // Equal length and digest but different nodes: compare sequences.
  std::vector<Value> va = a.values(), vb = b.values();
  return std::lexicographical_compare(va.begin(), va.end(), vb.begin(),
                                      vb.end());
}

bool History::is_prefix_of(const History& other) const {
  if (empty()) return true;
  if (length() > other.length()) return false;
  const detail::HistNode* n = other.node_;
  for (std::uint32_t d = other.length(); d > length(); --d) n = n->parent;
  return n == node_;
}

History History::prefix(std::uint32_t len) const {
  ANON_CHECK(len > 0 && len <= length());
  const detail::HistNode* n = node_;
  for (std::uint32_t d = length(); d > len; --d) n = n->parent;
  return History(n);
}

std::vector<Value> History::values() const {
  std::vector<Value> out;
  out.reserve(length());
  for (const detail::HistNode* n = node_; n != nullptr; n = n->parent)
    out.push_back(n->last);
  std::reverse(out.begin(), out.end());
  return out;
}

std::string History::to_string() const {
  std::string out = "[";
  bool first = true;
  for (const Value& v : values()) {
    if (!first) out += ",";
    out += v.to_string();
    first = false;
  }
  return out + "]";
}

History HistoryArena::append(const History& h, Value v) {
  Key key{h.node_, v};
  std::lock_guard<std::mutex> lock(mu_);
  auto it = nodes_.find(key);
  if (it == nodes_.end()) {
    auto node = std::make_unique<detail::HistNode>();
    node->last = v;
    node->parent = h.node_;
    node->length = h.length() + 1;
    node->digest = mix(h.digest(), v.stable_hash());
    it = nodes_.emplace(key, std::move(node)).first;
  }
  return History(it->second.get());
}

History HistoryArena::of(const std::vector<Value>& vals) {
  History h;
  for (const Value& v : vals) h = append(h, v);
  return h;
}

}  // namespace anon
