// A small-buffer, never-allocating std::function replacement for the
// simulators' hot event paths.
//
// `EventQueue` (baseline/async_net.hpp) and `StepScheduler`
// (shm/register_sim.hpp) store one callable per scheduled event; with
// `std::function` every capture larger than the libstdc++ small-object
// buffer (16 bytes — almost every closure in the ABD protocol stack) is a
// heap allocation and a pointer chase per event.  `InplaceFunction` stores
// the callable inline in a fixed `Cap`-byte buffer and REFUSES (at compile
// time) captures that do not fit, so the per-event allocation is gone by
// construction, not by luck.  See tests/inplace_function_test.cpp for the
// allocation-counter proof on the ABD hot path.
//
// Differences from std::function, on purpose:
//  * move-only (the schedulers only ever move events), so move-only
//    captures work too;
//  * no allocation fallback: a too-large capture is a static_assert, which
//    keeps the "zero allocations per event" claim honest;
//  * no target()/target_type() RTTI.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

#include "common/check.hpp"

namespace anon {

template <typename Sig, std::size_t Cap = 48>
class InplaceFunction;  // undefined; only the R(Args...) partial spec exists

template <typename R, typename... Args, std::size_t Cap>
class InplaceFunction<R(Args...), Cap> {
 public:
  InplaceFunction() = default;

  template <typename F,
            typename = std::enable_if_t<!std::is_same_v<
                std::decay_t<F>, InplaceFunction>>>
  InplaceFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    static_assert(sizeof(Fn) <= Cap,
                  "capture too large for this InplaceFunction's inline "
                  "buffer — raise Cap or shrink the capture");
    static_assert(alignof(Fn) <= alignof(std::max_align_t));
    static_assert(std::is_nothrow_move_constructible_v<Fn>,
                  "events are moved through the calendar; the capture must "
                  "be nothrow-movable");
    ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
    invoke_ = [](void* b, Args&&... args) -> R {
      return (*std::launder(reinterpret_cast<Fn*>(b)))(
          std::forward<Args>(args)...);
    };
    relocate_ = [](void* dst, void* src) {
      Fn* s = std::launder(reinterpret_cast<Fn*>(src));
      ::new (dst) Fn(std::move(*s));
      s->~Fn();
    };
    destroy_ = [](void* b) { std::launder(reinterpret_cast<Fn*>(b))->~Fn(); };
  }

  InplaceFunction(InplaceFunction&& other) noexcept { steal(std::move(other)); }

  InplaceFunction& operator=(InplaceFunction&& other) noexcept {
    if (this != &other) {
      reset();
      steal(std::move(other));
    }
    return *this;
  }

  InplaceFunction(const InplaceFunction&) = delete;
  InplaceFunction& operator=(const InplaceFunction&) = delete;

  ~InplaceFunction() { reset(); }

  explicit operator bool() const { return invoke_ != nullptr; }

  R operator()(Args... args) {
    ANON_CHECK_MSG(invoke_ != nullptr, "calling an empty InplaceFunction");
    return invoke_(buf_, std::forward<Args>(args)...);
  }

  void reset() {
    if (destroy_ != nullptr) destroy_(buf_);
    invoke_ = nullptr;
    relocate_ = nullptr;
    destroy_ = nullptr;
  }

 private:
  void steal(InplaceFunction&& other) {
    invoke_ = other.invoke_;
    relocate_ = other.relocate_;
    destroy_ = other.destroy_;
    if (other.relocate_ != nullptr) other.relocate_(buf_, other.buf_);
    other.invoke_ = nullptr;
    other.relocate_ = nullptr;
    other.destroy_ = nullptr;
  }

  R (*invoke_)(void*, Args&&...) = nullptr;
  void (*relocate_)(void* dst, void* src) = nullptr;  // move-construct + destroy src
  void (*destroy_)(void*) = nullptr;
  alignas(std::max_align_t) unsigned char buf_[Cap];
};

}  // namespace anon
