// Deterministic, splittable pseudo-random number generator.
//
// All simulations are seeded; results must be bit-reproducible across runs
// and platforms, so we avoid std::mt19937's distribution portability issues
// by implementing xoshiro256** plus our own bounded-int / real draws.
#pragma once

#include <cstdint>

namespace anon {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    // SplitMix64 expansion of the seed into the xoshiro state.
    std::uint64_t x = seed;
    for (auto& si : s_) si = splitmix(x);
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  // Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t below(std::uint64_t bound) {
    // Debiased modulo (Lemire-style rejection is overkill here; the bounds
    // used in simulations are tiny compared to 2^64).
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      std::uint64_t r = next_u64();
      if (r >= threshold) return r % bound;
    }
  }

  // Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  // Uniform real in [0, 1).
  double real() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  bool chance(double p) { return real() < p; }

  // Derive an independent child generator (for per-process / per-module
  // streams that must not perturb each other when one draws more numbers).
  Rng split() { return Rng(next_u64() ^ 0xd1b54a32d192ed03ULL); }

 private:
  static std::uint64_t splitmix(std::uint64_t& x) {
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
};

}  // namespace anon
