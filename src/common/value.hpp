// Consensus values with the distinguished non-value ⊥ (bottom).
//
// The paper's Algorithm 3 lets non-leaders propose the special value ⊥,
// which participates in set operations but is excluded when adopting a new
// estimate (`max(WRITTEN \ {⊥})`).  We model a value as either ⊥ or a
// 64-bit payload; ⊥ orders below every proper value so that `max` over a
// mixed set never selects it by accident.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <ostream>
#include <string>

#include "common/flat_set.hpp"

namespace anon {

class Value {
 public:
  // Default-constructed value is ⊥.
  constexpr Value() : payload_(0), bottom_(true) {}
  constexpr explicit Value(std::int64_t v) : payload_(v), bottom_(false) {}

  static constexpr Value Bottom() { return Value(); }

  constexpr bool is_bottom() const { return bottom_; }

  // Precondition: !is_bottom().
  constexpr std::int64_t get() const { return payload_; }

  friend constexpr auto operator<=>(const Value& a, const Value& b) {
    // ⊥ < every proper value; proper values order by payload.
    if (a.bottom_ != b.bottom_) return a.bottom_ ? std::strong_ordering::less
                                                 : std::strong_ordering::greater;
    if (a.bottom_) return std::strong_ordering::equal;
    return a.payload_ <=> b.payload_;
  }
  friend constexpr bool operator==(const Value& a, const Value& b) {
    return a.bottom_ == b.bottom_ && (a.bottom_ || a.payload_ == b.payload_);
  }

  std::string to_string() const {
    return bottom_ ? std::string("⊥") : std::to_string(payload_);
  }

  friend std::ostream& operator<<(std::ostream& os, const Value& v) {
    return os << v.to_string();
  }

  // Deterministic hash (used by history hashing; must be stable across runs).
  constexpr std::uint64_t stable_hash() const {
    std::uint64_t x = bottom_ ? 0x9e3779b97f4a7c15ULL
                              : static_cast<std::uint64_t>(payload_) + 1;
    x ^= x >> 30; x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27; x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return x;
  }

 private:
  std::int64_t payload_;
  bool bottom_;
};

// The paper's value sets are tiny (bounded by the number of distinct
// initial values); a sorted small-buffer flat set makes every per-round
// union/intersection a short merge pass with no node allocations.
using ValueSet = FlatSet<Value, 4>;

// Union of two value sets (merge-based, see FlatSet::union_with).
inline ValueSet set_union(const ValueSet& a, const ValueSet& b) {
  ValueSet out = a;
  out.union_with(b);
  return out;
}

// a := a ∪ b, reusing a's storage.
inline void set_union_inplace(ValueSet& a, const ValueSet& b) {
  a.union_with(b);
}

// Intersection of two value sets (merge-based).
inline ValueSet set_intersect(const ValueSet& a, const ValueSet& b) {
  ValueSet out = a;
  out.intersect_with(b);
  return out;
}

// a := a ∩ b, in place (no allocation).
inline void set_intersect_inplace(ValueSet& a, const ValueSet& b) {
  a.intersect_with(b);
}

// `s \ {⊥}`.
inline ValueSet minus_bottom(ValueSet s) {
  s.erase(Value::Bottom());
  return s;
}

// True iff `s ⊆ allowed` (single merge scan).
inline bool subset_of(const ValueSet& s, const ValueSet& allowed) {
  return s.subset_of(allowed);
}

// Deterministic content hash of a sorted value set (order-dependent fold
// over an already-canonical order, so equal sets hash equal).  Used by the
// batch interner to dedup message payloads by digest.
inline std::uint64_t stable_hash(const ValueSet& s) {
  std::uint64_t h = 0xa0761d6478bd642fULL ^ s.size();
  for (const Value& v : s) {
    h ^= v.stable_hash();
    h *= 0x9e3779b97f4a7c15ULL;
    h ^= h >> 29;
  }
  return h;
}

inline std::string to_string(const ValueSet& s) {
  std::string out = "{";
  bool first = true;
  for (const Value& v : s) {
    if (!first) out += ",";
    out += v.to_string();
    first = false;
  }
  return out + "}";
}

}  // namespace anon

template <>
struct std::hash<anon::Value> {
  std::size_t operator()(const anon::Value& v) const noexcept {
    return static_cast<std::size_t>(v.stable_hash());
  }
};
