// Hash-consed proposal histories (Algorithm 3, §4.1 of the paper).
//
// A history is the sequence of values a process appended to HISTORY, one per
// round.  Processes are anonymous; the paper identifies them by these
// histories, compares histories for equality and for the *prefix-of*
// relation, and keys counters by history.
//
// Representation: immutable cons list growing at the head (newest element is
// the head node), interned in a `HistoryArena`.  Interning gives
//   * structural equality  ⇔ pointer equality (O(1) compares),
//   * prefix-of            ⇔ ancestor-of in the cons chain (O(Δlen) walk),
//   * O(1) append with full structural sharing between the histories of
//     processes that proposed identically for a while and then diverged.
//
// Histories are value types (`History` wraps a node pointer); the arena owns
// the nodes and must outlive every History it produced.  One arena per
// simulation keeps runs independent and deterministic.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/value.hpp"

namespace anon {

class HistoryArena;

namespace detail {
struct HistNode {
  Value last;                 // newest appended value
  const HistNode* parent;     // history without `last`; nullptr for length-1
  std::uint32_t length;       // number of values in the sequence
  std::uint64_t digest;       // rolling hash over the whole sequence
};
}  // namespace detail

// A (possibly empty) proposal history.  Empty histories only appear as the
// "no history yet" default; Algorithm 3 initializes HISTORY := VAL, so every
// message carries a non-empty history.
class History {
 public:
  History() : node_(nullptr) {}

  bool empty() const { return node_ == nullptr; }
  std::uint32_t length() const { return node_ ? node_->length : 0; }
  std::uint64_t digest() const { return node_ ? node_->digest : 0; }

  // Precondition: !empty().
  Value last() const { return node_->last; }

  // Structural equality; O(1) thanks to interning (same arena only).
  friend bool operator==(const History& a, const History& b) {
    return a.node_ == b.node_;
  }

  // Deterministic total order usable as a map key: by length, then digest,
  // then full sequence comparison as a tie-break for the (engineered-hash-
  // collision) case.  NOT the prefix order.
  friend bool operator<(const History& a, const History& b);

  // True iff `this` is a prefix of `other` (reflexive: h is a prefix of h).
  // Because histories grow at the head, a prefix is exactly an ancestor node
  // in `other`'s parent chain at the right depth.
  bool is_prefix_of(const History& other) const;

  // The prefix of this history of length `len` (0 < len <= length()).
  History prefix(std::uint32_t len) const;

  // The history without its newest value (empty if length() <= 1). O(1).
  History parent() const {
    return node_ ? History(node_->parent) : History();
  }

  // Values oldest-first (O(n), for tests/printing).
  std::vector<Value> values() const;

  std::string to_string() const;

 private:
  friend class HistoryArena;
  explicit History(const detail::HistNode* n) : node_(n) {}
  const detail::HistNode* node_;
};

// Interning arena.  One arena per simulation; `append` is internally
// synchronized so the automatons of one simulation may share the arena
// even when the engine shards them across worker threads (LockstepNet
// with engine_threads > 1).  Interning stays canonical under the lock —
// the (parent, value) map admits one node per key regardless of which
// thread got there first — so pointer equality ⇔ structural equality
// holds under any interleaving, and every observable History comparison
// is content-based, keeping sharded runs byte-identical to serial ones.
class HistoryArena {
 public:
  HistoryArena() = default;
  HistoryArena(const HistoryArena&) = delete;
  HistoryArena& operator=(const HistoryArena&) = delete;

  // The history `h · v` (append v).  h may be empty.
  History append(const History& h, Value v);

  // Convenience: the length-1 history ⟨v⟩.
  History singleton(Value v) { return append(History(), v); }

  // Build from a sequence (oldest first).
  History of(const std::vector<Value>& vals);

  std::size_t interned_nodes() const {
    std::lock_guard<std::mutex> lock(mu_);
    return nodes_.size();
  }

 private:
  struct Key {
    const detail::HistNode* parent;
    Value v;
    friend bool operator<(const Key& a, const Key& b) {
      if (a.parent != b.parent) return a.parent < b.parent;
      return a.v < b.v;
    }
  };
  mutable std::mutex mu_;
  std::map<Key, std::unique_ptr<detail::HistNode>> nodes_;
};

}  // namespace anon
