// Trace validators: certify that a recorded run satisfies the round-based
// properties of MS / ES / ESS (§2.3).  These are the executable counterpart
// of the paper's environment definitions, and double as the acceptance test
// for Algorithm 5's *emulated* MS environment (Theorem 4).
//
// Checked prefix: rounds 1..K−1 where K = min rounds completed over correct
// processes — round k's timely-delivery window only closes once a process
// has executed end-of-round k+1, so the last completed round of the
// slowest correct process is still open and cannot be judged.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "giraf/trace.hpp"

namespace anon {

struct EnvCheckResult {
  // MS: every checked round has at least one timely source.
  bool ms_ok = false;
  Round checked_rounds = 0;       // K
  Round first_ms_violation = 0;   // round lacking a source (if !ms_ok)
  // Earliest round k0 such that every correct process has a timely link in
  // every checked round >= k0 (ES witness), if any.
  std::optional<Round> es_from;
  // Earliest round k0 such that one fixed process is a timely source in
  // every checked round >= k0 (ESS witness), if any.
  std::optional<Round> ess_from;
  std::optional<ProcId> ess_source;
  // One timely source per checked round (first found), for diagnostics.
  std::vector<ProcId> sources;

  std::string to_string() const;
};

// `correct`: the processes that never crash in this run (the properties'
// "every correct process receives…" quantifier ranges over these).
EnvCheckResult check_environment(const Trace& trace, std::size_t n,
                                 const std::vector<ProcId>& correct);

}  // namespace anon
