// Schedule generators: DelayModels that satisfy MS / ES / ESS by
// construction (the validators in env/validate.hpp independently certify
// the produced traces — belt and braces).
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "common/value.hpp"
#include "env/environment.hpp"
#include "net/schedule.hpp"

namespace anon {

// A DelayModel realizing the requested environment against a given crash
// plan.  Stateless per query (hash-based), so arbitrarily long runs use no
// per-round memory.
//
// Source selection per round: among processes that survive past round k
// (crash_round > k); for ESS after stabilization, a fixed correct process.
// A link from the round source is always timely; after GST in ES all links
// are timely; everything else draws (timely with timely_prob, else delay in
// [1, max_delay]).
class EnvDelayModel final : public DelayModel {
 public:
  EnvDelayModel(EnvParams params, const CrashPlan& crashes);

  Round delay(Round k, ProcId sender, ProcId receiver) const override;
  std::optional<ProcId> planned_source(Round k) const override;

  // Rounds whose delay() provably ignores (sender, receiver) — ES after
  // GST, and the degenerate all-timely parameterizations.  Lets the cohort
  // engine skip the per-link probes entirely (net/cohort.hpp).
  std::optional<Round> uniform_delay(Round k) const override;

  const EnvParams& params() const { return params_; }

  // The fixed eventual source (ESS only).
  ProcId stable_source() const;

 private:
  bool all_timely_at(Round k) const;

  EnvParams params_;
  std::vector<Round> crash_round_;  // per process, kNeverCrashes if correct
  std::vector<ProcId> correct_;
  ProcId stable_source_ = 0;
};

// An adversarial MS model: the source moves every round and all non-source
// links are maximally late.  NOTE (documented in EXPERIMENTS.md, E8): in
// lock-step executions even this schedule lets Algorithm 2 converge — the
// per-round source relays one value to everybody and the max-adoption rule
// collapses bivalence.  The true FLP adversary needs unbounded round skew;
// see StagedRevealModel for the constructive unbounded-delay family.
class HostileMsModel final : public DelayModel {
 public:
  HostileMsModel(std::size_t n, std::uint64_t seed, Round lateness = 2);
  Round delay(Round k, ProcId sender, ProcId receiver) const override;
  std::optional<ProcId> planned_source(Round k) const override;

 private:
  std::size_t n_;
  std::uint64_t seed_;
  Round lateness_;
};

// The bivalent two-camp adversary (E8): a *constructive*, stationary
// MS-admissible schedule on which Algorithm 2 never decides — the
// executable witness for "consensus is impossible in MS" (FLP corollary
// via Theorem 4).
//
// Construction (n ≥ 3): camp A = {p0} proposes a (small); camp B =
// {p1, …} proposes b (large).  Sources alternate across camps:
//   * odd rounds:  p0 is the timely source; nothing else is delivered —
//     so p0's fresh proposal {a} reaches everyone, while camp B's fresh
//     {b} proposals reach nobody.
//   * even rounds: p1 is the timely source; nothing else is delivered —
//     p1's union message {a, b} reaches everyone.
// Invariants (per cycle): camp B's WRITTEN at even rounds is {a, b}, so it
// re-adopts max = b and keeps proposing b; p0's WRITTEN is {a}, so it
// keeps a; every process's PROPOSED contains both a and b at even rounds,
// so the decision test (PROPOSED = {VAL}) fails everywhere, forever.  The
// run is bivalent for eternity, yet every round has a timely source — a
// legal MS run.  (See EXPERIMENTS.md/E8; naive "hostile" schedules with
// a single information flow actually let Algorithm 2 converge.)
class BivalentMsModel final : public DelayModel {
 public:
  explicit BivalentMsModel(std::size_t n);
  Round delay(Round k, ProcId sender, ProcId receiver) const override;
  std::optional<ProcId> planned_source(Round k) const override;
  // Initial values realizing the two camps (p0 small, others large).
  static std::vector<Value> initial_values(std::size_t n);

 private:
  std::size_t n_;
};

// The E1.b adversary: the bivalent two-camp MS schedule rules until GST,
// full synchrony afterwards.  Under it Algorithm 2 cannot decide before
// GST, so the decision round tracks GST plus a small constant — the
// paper's termination shape with the ES promise made tight.
class BivalentUntilGstModel final : public DelayModel {
 public:
  BivalentUntilGstModel(std::size_t n, Round gst);
  Round delay(Round k, ProcId sender, ProcId receiver) const override;
  std::optional<ProcId> planned_source(Round k) const override;

 private:
  BivalentMsModel camps_;
  Round gst_;
};

}  // namespace anon
