#include "env/generate.hpp"

#include "common/check.hpp"

namespace anon {

const char* to_string(EnvKind k) {
  switch (k) {
    case EnvKind::kMS:
      return "MS";
    case EnvKind::kES:
      return "ES";
    case EnvKind::kESS:
      return "ESS";
  }
  return "?";
}

EnvDelayModel::EnvDelayModel(EnvParams params, const CrashPlan& crashes)
    : params_(params) {
  ANON_CHECK(params_.n >= 1);
  crash_round_.resize(params_.n);
  for (ProcId p = 0; p < params_.n; ++p) crash_round_[p] = crashes.crash_round(p);
  correct_ = crashes.correct(params_.n);
  ANON_CHECK_MSG(!correct_.empty(),
                 "environments require at least one correct process");
  // ESS: the eventual source is a hash-chosen correct process.
  stable_source_ =
      correct_[hash_below(hash_mix(params_.seed, 0x51ab1e, 0, 0),
                          correct_.size())];
}

ProcId EnvDelayModel::stable_source() const { return stable_source_; }

std::optional<ProcId> EnvDelayModel::planned_source(Round k) const {
  if (params_.kind == EnvKind::kESS && k > params_.stabilization)
    return stable_source_;
  // Moving source: hash-pick among processes that survive past round k (they
  // must complete end-of-round k with a full broadcast).  At least one
  // exists: any correct process.
  std::vector<ProcId> eligible;
  eligible.reserve(params_.n);
  for (ProcId p = 0; p < params_.n; ++p)
    if (crash_round_[p] > k) eligible.push_back(p);
  return eligible[hash_below(hash_mix(params_.seed, 0x50ce, k, 0),
                             eligible.size())];
}

bool EnvDelayModel::all_timely_at(Round k) const {
  return params_.kind == EnvKind::kES && k > params_.stabilization;
}

std::optional<Round> EnvDelayModel::uniform_delay(Round k) const {
  // Mirrors delay() below: post-GST ES returns 0 before consulting the
  // link, and max_delay == 0 / timely_prob >= 1 make every non-source
  // draw come out 0 as well (the source link is 0 by definition).
  if (all_timely_at(k) || params_.max_delay == 0 || params_.timely_prob >= 1.0)
    return Round{0};
  return std::nullopt;
}

Round EnvDelayModel::delay(Round k, ProcId sender, ProcId receiver) const {
  if (all_timely_at(k)) return 0;
  if (planned_source(k) == sender) return 0;
  const std::uint64_t h = hash_mix(params_.seed, k, sender, receiver);
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  if (u < params_.timely_prob) return 0;
  if (params_.max_delay == 0) return 0;
  return 1 + hash_below(hash_mix(h, 0xde1a, k, sender), params_.max_delay);
}

HostileMsModel::HostileMsModel(std::size_t n, std::uint64_t seed,
                               Round lateness)
    : n_(n), seed_(seed), lateness_(lateness) {
  ANON_CHECK(n_ >= 1 && lateness_ >= 1);
}

std::optional<ProcId> HostileMsModel::planned_source(Round k) const {
  // Round-robin: the source moves every round, deterministically.
  return static_cast<ProcId>((k + hash_mix(seed_, 0xbad, 0, 0)) % n_);
}

Round HostileMsModel::delay(Round k, ProcId sender, ProcId receiver) const {
  (void)receiver;
  if (planned_source(k) == sender) return 0;
  return lateness_;
}

BivalentMsModel::BivalentMsModel(std::size_t n) : n_(n) {
  ANON_CHECK_MSG(n >= 3, "the two-camp construction needs n >= 3");
}

std::optional<ProcId> BivalentMsModel::planned_source(Round k) const {
  return (k % 2 == 1) ? 0 : 1;  // odd rounds: p0 (camp A); even: p1 (camp B)
}

std::vector<Value> BivalentMsModel::initial_values(std::size_t n) {
  std::vector<Value> vals;
  vals.reserve(n);
  vals.push_back(Value(1));                          // camp A: a = 1
  for (std::size_t i = 1; i < n; ++i) vals.push_back(Value(2));  // camp B
  return vals;
}

Round BivalentMsModel::delay(Round k, ProcId sender, ProcId receiver) const {
  (void)receiver;
  if (planned_source(k) == sender) return 0;
  return 2;  // everything non-source arrives one round late (unread slot)
}


BivalentUntilGstModel::BivalentUntilGstModel(std::size_t n, Round gst)
    : camps_(n), gst_(gst) {}

Round BivalentUntilGstModel::delay(Round k, ProcId sender,
                                   ProcId receiver) const {
  return k > gst_ ? 0 : camps_.delay(k, sender, receiver);
}

std::optional<ProcId> BivalentUntilGstModel::planned_source(Round k) const {
  return camps_.planned_source(k);
}

}  // namespace anon
