// Seeded, deterministic fault plans injected into the delivery path of
// both simulation engines (net/lockstep.hpp, net/cohort.hpp).
//
// The paper's model is crash-only: broadcasts are reliable and n is fixed.
// A production network is not — links lose, duplicate, and reorder
// messages, senders can be omission-faulty (alive but with dead outbound
// links), and processes leave and rejoin.  `FaultPlan` layers those faults
// on top of a DelayModel *without touching protocol code*: every fault is
// a pure function of (fault seed, round, sender, receiver), so the serial,
// sharded, and cohort engines compute identical fates and reports stay
// byte-identical at every thread/shard count.
//
// Fault taxonomy (all per-link, decided at the sender's end-of-round):
//
//   loss       the round-k message on link (s → r) is silently dropped
//   duplicate  the message is delivered twice, the copy `dup_extra_delay`
//              rounds later (inbox views are sets, so a same-round copy
//              would be invisible; the delay makes duplication observable)
//   reorder    the message takes up to `max_extra_delay` extra rounds,
//              on top of whatever the DelayModel already said
//   omission   every outbound link of a listed sender is dead, forever
//   churn      during [leave, rejoin) a process's links are down in both
//              directions; the process itself keeps executing rounds, so
//              its first post-rejoin broadcast is its re-announcement
//
// Safety contract: with `exempt_source` set (the default), links FROM the
// round's planned source (DelayModel::planned_source) are exempt from every
// fault.  Every correct process then still receives the source's round-k
// batch, which is exactly the property Algorithm 2's agreement proof
// needs — so safety holds under arbitrary fault intensity and only
// termination degrades.  Clearing `exempt_source` deliberately breaks that
// contract to map where the guarantees fail (the E14 survival map).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "giraf/types.hpp"
#include "net/schedule.hpp"

namespace anon {

// Process `process` is disconnected (links down both ways) during
// [leave, rejoin).  rejoin == 0 means it never comes back.
struct ChurnSpec {
  ProcId process = 0;
  Round leave = 0;
  Round rejoin = 0;

  friend bool operator==(const ChurnSpec&, const ChurnSpec&) = default;
};

// The declarative fault surface carried by ScenarioSpec / ConsensusConfig.
// Value semantics on purpose: configs are copied into sweep grids, so the
// plan object proper (FaultPlan) is rebuilt per run from these parameters.
struct FaultParams {
  // 0 = derive the fault stream from the run seed (fault_stream_seed);
  // nonzero pins the stream independently of the run seed.
  std::uint64_t seed = 0;

  double loss_prob = 0;     // per-link drop probability
  double dup_prob = 0;      // per-link duplication probability
  Round dup_extra_delay = 1;  // >= 1: copy arrives this many rounds later
  double reorder_prob = 0;  // per-link extra-delay probability
  Round max_extra_delay = 4;  // reorder adds 1..max_extra_delay rounds

  std::vector<ProcId> omission_senders;  // dead outbound links, forever
  std::vector<ChurnSpec> churn;          // leave/rejoin windows

  // Exempt links from the planned per-round source from all faults (keeps
  // the env contract honest; see the safety contract above).
  bool exempt_source = true;

  bool active() const {
    return loss_prob > 0 || dup_prob > 0 || reorder_prob > 0 ||
           !omission_senders.empty() || !churn.empty();
  }

  friend bool operator==(const FaultParams&, const FaultParams&) = default;
};

// The per-link verdict: deliver at all, how much extra delay, and whether
// a delayed duplicate copy is also scheduled.
struct LinkFate {
  bool deliver = true;
  Round extra_delay = 0;
  bool duplicate = false;
  Round dup_delay = 1;  // rounds AFTER the primary copy's delivery round
};

// Deterministic Bernoulli draw from a 64-bit hash (53-bit mantissa
// uniform).  Shared with runtime/bus.hpp's JitterPolicy so the simulated
// and realtime backends read the same loss knob identically.
bool hash_chance(std::uint64_t h, double prob);

// The fault stream seed for a run: the plan's own seed when pinned,
// otherwise a salted derivation from the run seed (so the fault stream is
// decorrelated from the delay/crash streams that consume the raw seed).
std::uint64_t fault_stream_seed(std::uint64_t run_seed,
                                std::uint64_t plan_seed);

// A compiled fault plan for one run.  Stateless after construction;
// `fate` is pure in (round, sender, receiver), so any engine — serial,
// sharded, cohort — computes identical verdicts in any order.
class FaultPlan {
 public:
  FaultPlan() = default;
  FaultPlan(const FaultParams& params, std::uint64_t run_seed, std::size_t n,
            const DelayModel* delays);

  bool active() const { return active_; }

  // The fate of sender's round-k message on the link to receiver.
  // Exemption (planned source), omission, and churn are folded in here so
  // engines need exactly one call per link.
  LinkFate fate(Round k, ProcId sender, ProcId receiver) const;

  // Is p inside one of its churn windows during round k?
  bool down(ProcId p, Round k) const;

  bool omission_faulty(ProcId p) const {
    return p < omission_.size() && omission_[p];
  }

  std::uint64_t seed() const { return seed_; }

 private:
  bool exempt(Round k, ProcId sender) const;

  FaultParams params_;
  std::uint64_t seed_ = 0;
  const DelayModel* delays_ = nullptr;
  std::vector<bool> omission_;  // indexed by ProcId, sized n
  bool active_ = false;
};

}  // namespace anon
