// Environment definitions (§2.3 of the paper).
//
//   MS  — moving source: every round k has *some* process with a timely
//         link (completes round k; its round-k message reaches every
//         correct process within their round k).  The source may change
//         arbitrarily, every round.
//   ES  — eventual synchrony: MS + after some round (GST) every correct
//         process has a timely link in every round.
//   ESS — eventually stable source: MS + after some round the source is
//         the same process forever.
#pragma once

#include <cstdint>

#include "giraf/types.hpp"

namespace anon {

enum class EnvKind { kMS, kES, kESS };

const char* to_string(EnvKind k);

struct EnvParams {
  EnvKind kind = EnvKind::kES;
  std::size_t n = 3;          // number of processes (unknown to them!)
  std::uint64_t seed = 1;     // adversary randomness
  Round stabilization = 0;    // ES: GST (all timely from round GST+1);
                              // ESS: source fixed from round stabilization+1
  Round max_delay = 3;        // extra delay drawn in [1, max_delay] for
                              // links the adversary makes non-timely
  double timely_prob = 0.25;  // chance a non-guaranteed link is timely anyway
};

}  // namespace anon
