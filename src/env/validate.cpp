#include "env/validate.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "common/check.hpp"
#include "net/schedule.hpp"

namespace anon {

std::string EnvCheckResult::to_string() const {
  std::ostringstream os;
  os << "env{ms=" << (ms_ok ? "ok" : "VIOLATED") << " over " << checked_rounds
     << " rounds";
  if (!ms_ok) os << " (first violation r" << first_ms_violation << ")";
  if (es_from) os << ", ES from r" << *es_from;
  if (ess_from) os << ", ESS from r" << *ess_from << " (source p" << *ess_source << ")";
  os << "}";
  return os.str();
}

EnvCheckResult check_environment(const Trace& trace, std::size_t n,
                                 const std::vector<ProcId>& correct) {
  EnvCheckResult res;
  ANON_CHECK(!correct.empty());

  // Rounds completed per process.
  std::vector<Round> completed(n, 0);
  for (const auto& e : trace.end_of_rounds())
    completed[e.process] = std::max(completed[e.process], e.round);

  Round K = kNeverCrashes;
  for (ProcId p : correct) K = std::min(K, completed[p]);
  if (K == kNeverCrashes || K <= 1) return res;  // nothing checkable
  K -= 1;  // the slowest process's current round is still open
  res.checked_rounds = K;

  // timely[(sender, k)] = receivers that got sender's round-k message no
  // later than their own round k (early receipt — receiver still in an
  // older round — is fine: the message sits in M[k] in time for
  // compute(k); only receiver_round > k misses the round).
  std::map<std::pair<ProcId, Round>, std::set<ProcId>> timely;
  for (const auto& d : trace.deliveries())
    if (d.receiver_round <= d.msg_round && d.msg_round <= K)
      timely[{d.sender, d.msg_round}].insert(d.receiver);

  // Which processes executed end-of-round k (sent a round-k message).
  std::set<std::pair<ProcId, Round>> eor;
  for (const auto& e : trace.end_of_rounds()) eor.insert({e.process, e.round});

  const std::set<ProcId> correct_set(correct.begin(), correct.end());

  auto is_timely_source = [&](ProcId s, Round k) {
    if (eor.count({s, k}) == 0) return false;
    auto it = timely.find({s, k});
    for (ProcId j : correct) {
      if (j == s) continue;  // own message is local
      if (it == timely.end() || it->second.count(j) == 0) return false;
    }
    return true;
  };

  // Per-round: all timely sources; whether all correct processes are timely.
  std::vector<std::vector<ProcId>> sources_per_round(K + 1);
  std::vector<bool> all_correct_timely(K + 1, false);
  res.ms_ok = true;
  for (Round k = 1; k <= K; ++k) {
    for (ProcId s = 0; s < n; ++s)
      if (is_timely_source(s, k)) sources_per_round[k].push_back(s);
    if (sources_per_round[k].empty() && res.ms_ok) {
      res.ms_ok = false;
      res.first_ms_violation = k;
    }
    bool all = true;
    for (ProcId j : correct)
      if (!is_timely_source(j, k)) {
        all = false;
        break;
      }
    all_correct_timely[k] = all;
    if (!sources_per_round[k].empty())
      res.sources.push_back(sources_per_round[k].front());
    else
      res.sources.push_back(n);  // sentinel: no source
  }
  if (!res.ms_ok) return res;

  // ES witness: smallest k0 with all_correct_timely on [k0, K].
  for (Round k0 = K;; --k0) {
    if (!all_correct_timely[k0]) {
      if (k0 < K) res.es_from = k0 + 1;
      break;
    }
    if (k0 == 1) {
      res.es_from = 1;
      break;
    }
  }

  // ESS witness: some process s timely-source on all of [k0, K]; take the
  // smallest such k0 over all s.
  std::optional<Round> best_k0;
  std::optional<ProcId> best_s;
  for (ProcId s = 0; s < n; ++s) {
    // Walk back from K while s stays a source.
    Round k0 = K + 1;
    for (Round k = K;; --k) {
      bool src = std::find(sources_per_round[k].begin(),
                           sources_per_round[k].end(),
                           s) != sources_per_round[k].end();
      if (!src) break;
      k0 = k;
      if (k == 1) break;
    }
    if (k0 <= K && (!best_k0 || k0 < *best_k0)) {
      best_k0 = k0;
      best_s = s;
    }
  }
  res.ess_from = best_k0;
  res.ess_source = best_s;
  return res;
}

}  // namespace anon
