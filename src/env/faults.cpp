#include "env/faults.hpp"

namespace anon {
namespace {

// Distinct salts per fault type keep the Bernoulli streams independent
// even though they share one (round, sender, receiver) key.
constexpr std::uint64_t kLossSalt = 0x6c6f73735f6c6bULL;     // "loss_lk"
constexpr std::uint64_t kDupSalt = 0x6475706c6963ULL;        // "duplic"
constexpr std::uint64_t kReorderSalt = 0x72656f72646572ULL;  // "reorder"
constexpr std::uint64_t kStreamSalt = 0x66616c74706c616eULL;  // "fltplan"

}  // namespace

bool hash_chance(std::uint64_t h, double prob) {
  if (prob <= 0) return false;
  if (prob >= 1) return true;
  // 53-bit mantissa uniform in [0, 1).
  return static_cast<double>(h >> 11) * 0x1.0p-53 < prob;
}

std::uint64_t fault_stream_seed(std::uint64_t run_seed,
                                std::uint64_t plan_seed) {
  if (plan_seed != 0) return plan_seed;
  return hash_mix(run_seed, kStreamSalt, 0, 0);
}

FaultPlan::FaultPlan(const FaultParams& params, std::uint64_t run_seed,
                     std::size_t n, const DelayModel* delays)
    : params_(params),
      seed_(fault_stream_seed(run_seed, params.seed)),
      delays_(delays),
      active_(params.active()) {
  omission_.assign(n, false);
  for (ProcId p : params_.omission_senders)
    if (p < n) omission_[p] = true;
}

bool FaultPlan::down(ProcId p, Round k) const {
  for (const ChurnSpec& c : params_.churn) {
    if (c.process != p) continue;
    if (k >= c.leave && (c.rejoin == 0 || k < c.rejoin)) return true;
  }
  return false;
}

bool FaultPlan::exempt(Round k, ProcId sender) const {
  if (!params_.exempt_source || delays_ == nullptr) return false;
  return delays_->planned_source(k) == sender;
}

LinkFate FaultPlan::fate(Round k, ProcId sender, ProcId receiver) const {
  LinkFate f;
  if (!active_ || exempt(k, sender)) return f;
  if (omission_faulty(sender) || down(sender, k) || down(receiver, k)) {
    f.deliver = false;
    return f;
  }
  if (hash_chance(hash_mix(seed_ ^ kLossSalt, k, sender, receiver),
                  params_.loss_prob)) {
    f.deliver = false;
    return f;
  }
  if (params_.max_extra_delay > 0) {
    const std::uint64_t h = hash_mix(seed_ ^ kReorderSalt, k, sender, receiver);
    if (hash_chance(h, params_.reorder_prob))
      f.extra_delay = 1 + static_cast<Round>(
                              hash_below(h * 0x9e3779b97f4a7c15ULL,
                                         params_.max_extra_delay));
  }
  if (hash_chance(hash_mix(seed_ ^ kDupSalt, k, sender, receiver),
                  params_.dup_prob)) {
    f.duplicate = true;
    f.dup_delay = params_.dup_extra_delay > 0 ? params_.dup_extra_delay : 1;
  }
  return f;
}

}  // namespace anon
