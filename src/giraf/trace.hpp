// Execution traces: a machine-checkable record of which GIRAF actions fired
// when.  The environment validators (src/env/validate.hpp) consume these to
// certify that a simulated run actually satisfied MS / ES / ESS — both for
// runs produced by our schedule generators and for runs *emulated* by
// Algorithm 5 on top of a weak-set.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "giraf/types.hpp"

namespace anon {

// A process completed its k-th end-of-round (i.e. entered round k and sent
// its round-k message batch).
struct EndOfRoundEvent {
  ProcId process;
  Round round;
  std::uint64_t time;  // global virtual time of the action
};

// A round-`msg_round` message batch originating at `sender` was delivered
// to `receiver` while the receiver's current round was `receiver_round`.
// (Timely for round k  ⇔  msg_round == k && receiver_round == k.)
struct DeliveryEvent {
  ProcId sender;
  Round msg_round;
  ProcId receiver;
  Round receiver_round;
  std::uint64_t time;
};

struct CrashEvent {
  ProcId process;
  Round round;  // the round whose end-of-round the process never executed
};

class Trace {
 public:
  void record_end_of_round(ProcId p, Round k, std::uint64_t time) {
    eors_.push_back({p, k, time});
  }
  void record_delivery(ProcId s, Round mk, ProcId r, Round rk,
                       std::uint64_t time) {
    deliveries_.push_back({s, mk, r, rk, time});
  }
  void record_crash(ProcId p, Round k) { crashes_.push_back({p, k}); }

  const std::vector<EndOfRoundEvent>& end_of_rounds() const { return eors_; }
  const std::vector<DeliveryEvent>& deliveries() const { return deliveries_; }
  const std::vector<CrashEvent>& crashes() const { return crashes_; }

  // Highest round any process completed.
  Round max_round() const;

  // Rounds completed by process p (0 if none).
  Round rounds_completed(ProcId p, std::size_t n_processes) const;

  std::string summary() const;

 private:
  std::vector<EndOfRoundEvent> eors_;
  std::vector<DeliveryEvent> deliveries_;
  std::vector<CrashEvent> crashes_;
};

}  // namespace anon
