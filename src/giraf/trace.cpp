#include "giraf/trace.hpp"

#include <algorithm>
#include <sstream>

namespace anon {

Round Trace::max_round() const {
  Round best = 0;
  for (const auto& e : eors_) best = std::max(best, e.round);
  return best;
}

Round Trace::rounds_completed(ProcId p, std::size_t /*n_processes*/) const {
  Round best = 0;
  for (const auto& e : eors_)
    if (e.process == p) best = std::max(best, e.round);
  return best;
}

std::string Trace::summary() const {
  std::ostringstream os;
  os << "trace{eor=" << eors_.size() << ", deliveries=" << deliveries_.size()
     << ", crashes=" << crashes_.size() << ", max_round=" << max_round()
     << "}";
  return os.str();
}

}  // namespace anon
