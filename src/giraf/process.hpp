// Per-process engine of the extended GIRAF framework (Algorithm 1).
//
// States:    k_i ∈ ℕ (round), M_i ⊆ Messages (set-valued windowed inboxes,
//            see giraf/inbox.hpp).
// Actions:   input end-of-round_i  — runs initialize()/compute(), stores the
//            produced message into M_i[k_i+1], advances k_i and *outputs*
//            send(⟨M_i[k_i], k_i⟩): note the whole round-k_i *set* is sent,
//            so a process relays every round-k message it has already
//            received (this matters when rounds are not synchronized).
//   input receive(⟨M, k⟩)_i — merges M into M_i[k].
//
// The environment (our network simulators in src/net, src/emul) decides when
// these actions fire; rounds need not be synchronized across processes.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "giraf/automaton.hpp"
#include "giraf/inbox.hpp"
#include "giraf/types.hpp"

namespace anon {

template <GirafMessage M>
class GirafProcess {
 public:
  struct Outgoing {
    // M_i[k_i] — own round message plus relayed ones.  A reference into
    // the inbox window (never a copy: end_of_round is the per-round hot
    // path and the view owns a heap vector), valid until this process's
    // next receive/end_of_round.
    const InboxView<M>& batch;
    Round round;  // k_i
  };

  explicit GirafProcess(std::unique_ptr<Automaton<M>> automaton)
      : automaton_(std::move(automaton)) {
    ANON_CHECK(automaton_ != nullptr);
  }

  // input end-of-round_i (Algorithm 1 lines 5–12).
  Outgoing end_of_round() {
    M m = (k_ == 0) ? automaton_->initialize() : automaton_->compute(k_, inboxes_);
    inboxes_.add_local(std::move(m), k_ + 1);
    ++k_;
    inboxes_.advance_to(k_);
    check_decision_stability();
    return Outgoing{inboxes_.at(k_), k_};
  }

  // input receive(⟨M, k⟩)_i (Algorithm 1 lines 13–14): the zero-copy path
  // — the shared payload is referenced, not copied.
  void receive(SharedBatch<M> batch, Round k) {
    ANON_CHECK(k >= 1);
    inboxes_.add_shared(std::move(batch), k);
  }

  // By-value path for unsynchronised engines and tests.
  void receive(std::vector<M> batch, Round k) {
    ANON_CHECK(k >= 1);
    inboxes_.add_local(std::move(batch), k);
  }

  Round round() const { return k_; }

  // M_i[k]; only rounds {k_i - 1, k_i} are retained and readable.
  const InboxView<M>& inbox(Round k) const { return inboxes_.at(k); }

  const Inboxes<M>& inboxes() const { return inboxes_; }

  std::optional<Value> decision() const { return automaton_->decision(); }

  const Automaton<M>& automaton() const { return *automaton_; }
  Automaton<M>& automaton() { return *automaton_; }

  // --- Cohort-execution support (net/cohort.hpp) ---------------------------

  // Deep copy: cloned automaton state plus the full inbox window (shared
  // batch payloads are immutable, so the copied window aliases them
  // safely).  Requires Automaton::clone_state support.
  std::unique_ptr<GirafProcess<M>> clone() const {
    auto a = automaton_->clone_state();
    ANON_CHECK_MSG(a != nullptr,
                   "automaton type does not support cohort cloning "
                   "(override Automaton::clone_state)");
    auto p = std::make_unique<GirafProcess<M>>(std::move(a));
    p->k_ = k_;
    p->inboxes_ = inboxes_;
    p->decided_once_ = decided_once_;
    p->first_decision_ = first_decision_;
    return p;
  }

  // Digest over round, automaton state and live inbox content — the cohort
  // engine's merge-bucketing key.
  std::uint64_t state_digest() const {
    std::uint64_t h = automaton_->state_digest();
    h = detail::mix_digest(h, k_);
    h = detail::mix_digest(h, inboxes_.content_digest());
    return h;
  }

  // Exact equivalence: same round, equal automaton state, identical live
  // inbox content.  Two equal processes take identical steps forever under
  // identical future deliveries.
  bool same_state(const GirafProcess<M>& other) const {
    return k_ == other.k_ && automaton_->state_equals(*other.automaton_) &&
           inboxes_.same_content(other.inboxes_);
  }

 private:
  void check_decision_stability() {
    auto d = automaton_->decision();
    if (decided_once_) {
      ANON_CHECK_MSG(d.has_value() && *d == first_decision_,
                     "decision changed after being set");
    } else if (d.has_value()) {
      decided_once_ = true;
      first_decision_ = *d;
    }
  }

  std::unique_ptr<Automaton<M>> automaton_;
  Round k_ = 0;
  Inboxes<M> inboxes_;
  bool decided_once_ = false;
  Value first_decision_;
};

}  // namespace anon
