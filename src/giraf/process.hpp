// Per-process engine of the extended GIRAF framework (Algorithm 1).
//
// States:    k_i ∈ ℕ (round), M_i[ℕ] ⊆ Messages (set-valued inboxes).
// Actions:   input end-of-round_i  — runs initialize()/compute(), stores the
//            produced message into M_i[k_i+1], advances k_i and *outputs*
//            send(⟨M_i[k_i], k_i⟩): note the whole round-k_i *set* is sent,
//            so a process relays every round-k message it has already
//            received (this matters when rounds are not synchronized).
//   input receive(⟨M, k⟩)_i — merges M into M_i[k].
//
// The environment (our network simulators in src/net, src/emul) decides when
// these actions fire; rounds need not be synchronized across processes.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <utility>

#include "common/check.hpp"
#include "giraf/automaton.hpp"
#include "giraf/types.hpp"

namespace anon {

template <GirafMessage M>
class GirafProcess {
 public:
  struct Outgoing {
    std::set<M> batch;  // M_i[k_i] — own round message plus relayed ones
    Round round;        // k_i
  };

  explicit GirafProcess(std::unique_ptr<Automaton<M>> automaton)
      : automaton_(std::move(automaton)) {
    ANON_CHECK(automaton_ != nullptr);
  }

  // input end-of-round_i (Algorithm 1 lines 5–12).
  Outgoing end_of_round() {
    M m = (k_ == 0) ? automaton_->initialize() : automaton_->compute(k_, inboxes_);
    inboxes_[k_ + 1].insert(m);
    ++k_;
    check_decision_stability();
    return Outgoing{inboxes_[k_], k_};
  }

  // input receive(⟨M, k⟩)_i (Algorithm 1 lines 13–14).
  void receive(const std::set<M>& batch, Round k) {
    ANON_CHECK(k >= 1);
    inboxes_[k].insert(batch.begin(), batch.end());
  }

  Round round() const { return k_; }

  // M_i[k]; empty set if nothing received for round k.
  const std::set<M>& inbox(Round k) const { return inbox_at(inboxes_, k); }

  const Inboxes<M>& inboxes() const { return inboxes_; }

  std::optional<Value> decision() const { return automaton_->decision(); }

  const Automaton<M>& automaton() const { return *automaton_; }
  Automaton<M>& automaton() { return *automaton_; }

  // Drop inboxes for rounds < `round` (memory hygiene for long benches;
  // Algorithm 2/3 never reread old rounds.  Algorithm 4 unions over all
  // rounds but keeps its own running union, see MsWeakSetAutomaton).
  void forget_rounds_before(Round round) {
    inboxes_.erase(inboxes_.begin(), inboxes_.lower_bound(round));
  }

 private:
  void check_decision_stability() {
    auto d = automaton_->decision();
    if (decided_once_) {
      ANON_CHECK_MSG(d.has_value() && *d == first_decision_,
                     "decision changed after being set");
    } else if (d.has_value()) {
      decided_once_ = true;
      first_decision_ = *d;
    }
  }

  std::unique_ptr<Automaton<M>> automaton_;
  Round k_ = 0;
  Inboxes<M> inboxes_;
  bool decided_once_ = false;
  Value first_decision_;
};

}  // namespace anon
