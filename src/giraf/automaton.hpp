// The algorithm-facing half of the extended GIRAF framework (Algorithm 1).
//
// An algorithm instantiates the framework with two non-blocking functions,
// `initialize()` and `compute(k, M)`.  Because the network is anonymous,
// the round-k inbox `M[k]` is a *set* of messages: identical messages from
// behaviourally-identical processes collapse into one element.
//
// A message type must be regular and strictly ordered (usable in std::set).
#pragma once

#include <concepts>
#include <cstdint>
#include <memory>
#include <optional>

#include "common/value.hpp"
#include "giraf/inbox.hpp"
#include "giraf/types.hpp"

namespace anon {

template <typename M>
concept GirafMessage = std::regular<M> && requires(const M& a, const M& b) {
  { a < b } -> std::convertible_to<bool>;
};

// The state variable M_i of Algorithm 1.  The full per-round map of the
// paper is specialised to the two-round window the algorithms actually
// read ({k-1, k}); Algorithm 4's all-rounds union (line 15) is served by
// `InboxWindow::for_each_live`, which still sees every late delivery
// exactly once (far-late rounds clamp into the k-1 slot).
template <GirafMessage M>
using Inboxes = InboxWindow<M>;

// M_i[k].  Rejects rounds outside the {k-1, k} window (ANON_CHECK).
template <GirafMessage M>
const InboxView<M>& inbox_at(const Inboxes<M>& inboxes, Round k) {
  return inboxes.at(k);
}

// Interface implemented by the paper's algorithms (Algorithms 2, 3, 4).
//
// Ownership/lifetime: an automaton belongs to exactly one GirafProcess.
// The framework calls initialize() exactly once (first end-of-round) and
// compute() once per subsequent end-of-round, passing the inbox of the
// round being completed.
template <GirafMessage M>
class Automaton {
 public:
  virtual ~Automaton() = default;

  // Round-0 action; the returned message is this process's round-1 message.
  virtual M initialize() = 0;

  // End of round k: `inboxes` is M_i; `inbox_at(inboxes, k)` is the set of
  // round-k messages received so far (always contains the process's own
  // round-k message).  Returns the round-(k+1) message.  The views handed
  // out here point into `inboxes`; they must not be retained past compute.
  virtual M compute(Round k, const Inboxes<M>& inboxes) = 0;

  // Consensus-style decision, if this automaton decides (nullopt otherwise /
  // before deciding).  Once set it must never change — the framework checks.
  virtual std::optional<Value> decision() const { return std::nullopt; }

  // --- Cohort-execution hooks (net/cohort.hpp) ------------------------------
  //
  // Anonymous processes with equal state take equal steps, so the cohort
  // engine simulates one representative per state-equivalence class.  It
  // keys classes by `state_digest` (buckets), confirms candidate merges
  // with `state_equals` (exact), and deep-copies representatives with
  // `clone_state` when delivery asymmetries split a class.
  //
  // The defaults are safe but inert: digest 0 and never-equal disable
  // merging, and a null clone makes CohortNet reject the automaton type
  // outright.  Algorithms opt in by overriding all three over their full
  // mutable state (anything a future compute can read).

  // Deterministic digest of the current algorithm state.  Equal states
  // must digest equally; collisions are resolved by state_equals.
  virtual std::uint64_t state_digest() const { return 0; }

  // Exact state equality (same dynamic type, all state members equal).
  // Two automatons that compare equal must behave identically on every
  // future compute() given equal inboxes.
  virtual bool state_equals(const Automaton<M>& other) const {
    (void)other;
    return false;
  }

  // A deep copy of this automaton in its CURRENT state (not a fresh
  // instance).  nullptr means "not cohort-clonable".
  virtual std::unique_ptr<Automaton<M>> clone_state() const { return nullptr; }
};

}  // namespace anon
