// Message-payload interning and the two-round windowed inbox (the state
// M_i of Algorithm 1, specialised to what the algorithms actually read).
//
// Three pieces (see DESIGN.md, "message representation"):
//
//  * `MessageBatch<M>` — an immutable, sorted-unique message payload with a
//    content digest, shared by every receiver of one (sender, round)
//    broadcast.  `BatchInterner<M>` deduplicates payloads per engine round,
//    so behaviourally-identical senders (the anonymity collapse case, and
//    every decided process re-broadcasting its frozen message) share ONE
//    payload object network-wide.
//
//  * `InboxView<M>` — the set of messages of one round, materialised as a
//    digest-ordered array of pointers into the shared batches.  Receiving a
//    batch appends one pointer; deduplication happens once per read via a
//    digest sort (content comparisons only on digest ties), not via
//    per-element tree inserts with deep set-of-set comparisons.
//
//  * `InboxWindow<M>` — replaces the unbounded `std::map<Round, std::set<M>>`
//    per-process inbox map.  GIRAF's consensus algorithms only ever read the
//    round being completed (and the weak-set additionally unions everything
//    still live), so the window keeps exactly the rounds {k-1, k, k+1} in a
//    4-slot ring: k is the round being read, k+1 collects the own/early
//    messages of the next round, k-1 holds stragglers.  Reads outside
//    {k-1, k} are rejected (ANON_CHECK).  Writes clamp far-late rounds into
//    the k-1 slot (they are never read round-indexed; the weak-set's
//    all-rounds union still sees them exactly once) and park far-early
//    rounds (unsynchronised engines: MS emulation, realtime) in an overflow
//    map that migrates into the ring as the window slides.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/value.hpp"
#include "giraf/types.hpp"

namespace anon {

// Content digest of a message, for payload interning and view ordering.
// The fallback constant is CORRECT but slow (interning and inbox dedup
// degrade to pure content comparisons); specialise for hot message types.
template <typename M>
struct MessageDigest {
  static std::uint64_t of(const M&) { return 0; }
};

template <>
struct MessageDigest<ValueSet> {
  static std::uint64_t of(const ValueSet& s) { return stable_hash(s); }
};

namespace detail {
inline std::uint64_t mix_digest(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}

// The canonical whole-batch digest: a fold over the per-message digests in
// canonical (digest, content) order.  Shared by make_batch and the
// interner so the two fold definitions can never drift apart.
inline std::uint64_t fold_batch_digest(std::size_t count,
                                       const std::uint64_t* digests) {
  std::uint64_t h = 0x2545f4914f6cdd1dULL ^ count;
  for (std::size_t i = 0; i < count; ++i) h = mix_digest(h, digests[i]);
  return h;
}
}  // namespace detail

// One broadcast payload: the sorted-unique messages of a sender's round
// batch, with per-message digests and a whole-batch digest.  Immutable
// after construction; shared across all receivers via shared_ptr.
template <typename M>
struct MessageBatch {
  std::vector<M> msgs;                   // sorted by (digest, content)
  std::vector<std::uint64_t> digests;    // parallel to msgs
  std::uint64_t digest = 0;              // fold over digests (canonical order)

  std::size_t size() const { return msgs.size(); }
};

template <typename M>
using SharedBatch = std::shared_ptr<const MessageBatch<M>>;

namespace detail {

template <typename M>
bool digest_content_less(std::uint64_t da, const M& a, std::uint64_t db,
                         const M& b) {
  if (da != db) return da < db;
  return a < b;
}

// Canonicalise `msgs` into a batch: sort by (digest, content), dedup,
// fold the batch digest.
template <typename M>
MessageBatch<M> make_batch(std::vector<M> msgs) {
  MessageBatch<M> b;
  std::vector<std::pair<std::uint64_t, M>> tagged;
  tagged.reserve(msgs.size());
  for (M& m : msgs) tagged.emplace_back(MessageDigest<M>::of(m), std::move(m));
  std::sort(tagged.begin(), tagged.end(),
            [](const auto& x, const auto& y) {
              return digest_content_less(x.first, x.second, y.first, y.second);
            });
  b.msgs.reserve(tagged.size());
  b.digests.reserve(tagged.size());
  for (auto& [d, m] : tagged) {
    if (!b.msgs.empty() && b.digests.back() == d && b.msgs.back() == m)
      continue;  // duplicate content
    b.msgs.push_back(std::move(m));
    b.digests.push_back(d);
  }
  b.digest = fold_batch_digest(b.digests.size(), b.digests.data());
  return b;
}

}  // namespace detail

// The message set of one round, as pointers into shared batches.  Ordered
// by (digest, content) — deterministic because digests are content-derived
// — so identical runs iterate identically.  Views are cheap to copy
// (pointer array); the pointed-to messages live in the batches, which the
// owning inbox slot keeps alive.  A view returned out of the inbox (e.g.
// `Outgoing::batch`) is valid until the process's next receive/end-of-round.
template <typename M>
class InboxView {
 public:
  class const_iterator {
   public:
    using value_type = M;
    using difference_type = std::ptrdiff_t;
    using pointer = const M*;
    using reference = const M&;
    using iterator_category = std::forward_iterator_tag;

    const_iterator() = default;
    explicit const_iterator(const std::pair<std::uint64_t, const M*>* p)
        : p_(p) {}
    const M& operator*() const { return *p_->second; }
    const M* operator->() const { return p_->second; }
    const_iterator& operator++() {
      ++p_;
      return *this;
    }
    const_iterator operator++(int) {
      const_iterator t = *this;
      ++p_;
      return t;
    }
    friend bool operator==(const const_iterator& a, const const_iterator& b) {
      return a.p_ == b.p_;
    }

   private:
    const std::pair<std::uint64_t, const M*>* p_ = nullptr;
  };

  const_iterator begin() const { return const_iterator(items_.data()); }
  const_iterator end() const {
    return const_iterator(items_.data() + items_.size());
  }
  std::size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }

  // Membership by content (binary search on digest, content compare on
  // digest ties).  Returns 0 or 1 — the view is a set.
  std::size_t count(const M& m) const {
    const std::uint64_t d = MessageDigest<M>::of(m);
    auto it = std::lower_bound(
        items_.begin(), items_.end(), d,
        [](const auto& e, std::uint64_t key) { return e.first < key; });
    for (; it != items_.end() && it->first == d; ++it)
      if (*it->second == m) return 1;
    return 0;
  }

  // Copies the messages out (for engines that store batches by value).
  std::vector<M> copy_messages() const {
    std::vector<M> out;
    out.reserve(items_.size());
    for (const auto& [d, m] : items_) out.push_back(*m);
    return out;
  }

  // The cached (digest, message) pairs in canonical order — lets the
  // interner reuse digests instead of recomputing them per receiver.
  const std::vector<std::pair<std::uint64_t, const M*>>& items() const {
    return items_;
  }

 private:
  template <typename>
  friend class InboxWindow;
  std::vector<std::pair<std::uint64_t, const M*>> items_;
};

// Per-round payload interner.  Within a round, content-equal batches from
// different senders resolve to one object, so receiver-side dedup is a
// pointer compare.  `round_reset()` advances a generation counter instead
// of clearing the index: a batch whose content recurs in the very next
// round (the steady state — every decided process re-broadcasts its frozen
// message forever) is *promoted* instead of rebuilt, so converged rounds
// intern without allocating.  Promotion preserves the one-object-per-
// content-per-round invariant the engines rely on: all interns of a round
// for the same content still return the same pointer, and promoted batches
// appear in `fresh()` exactly like new ones, so the sharded barriers'
// cross-shard canonicalization sees them.
template <typename M>
class BatchInterner {
 public:
  // Interns the batch described by `view` (a just-produced outgoing round
  // batch).  Returns the canonical shared payload for its content.  The
  // view's cached per-message digests are reused, so an intern hit costs
  // one digest fold plus (on digest collision only) a content compare.
  SharedBatch<M> intern(const InboxView<M>& view) {
    digest_scratch_.clear();
    for (const auto& [d, m] : view.items()) digest_scratch_.push_back(d);
    const std::uint64_t digest = detail::fold_batch_digest(
        digest_scratch_.size(), digest_scratch_.data());
    Entry& e = by_digest_[digest];
    touch(e);
    for (const SharedBatch<M>& b : e.cur)
      if (b->size() == view.size() &&
          std::equal(b->msgs.begin(), b->msgs.end(), view.begin()))
        return b;
    // Not yet canonical this round: promote last round's object if the
    // content recurs (no rebuild), else copy the view out.  It is already
    // in canonical (digest, content) sorted-unique order, so the batch is
    // built directly.
    for (const SharedBatch<M>& b : e.prev)
      if (b->size() == view.size() &&
          std::equal(b->msgs.begin(), b->msgs.end(), view.begin())) {
        e.cur.push_back(b);
        fresh_.push_back(b);
        return b;
      }
    auto batch = std::make_shared<MessageBatch<M>>();
    batch->msgs.reserve(view.size());
    batch->digests.reserve(view.size());
    for (const auto& [d, m] : view.items()) {
      batch->msgs.push_back(*m);
      batch->digests.push_back(d);
    }
    batch->digest = digest;
    e.cur.push_back(batch);
    fresh_.push_back(batch);
    return batch;
  }

  // Payloads that became canonical (new or promoted) since the last
  // round_reset, in first-intern order.  The sharded engines run one
  // interner per shard and merge them at the round barrier: each shard's
  // fresh list is re-canonicalized against a global digest map so
  // content-equal batches from senders in different shards still collapse
  // to one object network-wide, exactly as a single interner does.
  const std::vector<SharedBatch<M>>& fresh() const { return fresh_; }

  void round_reset() {
    ++gen_;
    fresh_.clear();
    // Periodic compaction: digests untouched for two generations belong to
    // contents that stopped recurring (adversarial non-collapsing runs mint
    // fresh contents every round); drop their entries so the index tracks
    // the live working set instead of the whole history.
    if ((gen_ & 63u) == 0) {
      for (auto it = by_digest_.begin(); it != by_digest_.end();) {
        if (it->second.gen + 1 < gen_)
          it = by_digest_.erase(it);
        else
          ++it;
      }
    }
  }

 private:
  struct Entry {
    std::uint64_t gen = 0;                // generation `cur` belongs to
    std::vector<SharedBatch<M>> cur;      // canonical this round
    std::vector<SharedBatch<M>> prev;     // canonical last round
  };

  // Lazily rolls an entry forward to the current generation.
  void touch(Entry& e) {
    if (e.gen == gen_) return;
    if (e.gen + 1 == gen_) {
      std::swap(e.cur, e.prev);  // last round's objects become promotable
      e.cur.clear();
    } else {
      e.cur.clear();
      e.prev.clear();
    }
    e.gen = gen_;
  }

  std::unordered_map<std::uint64_t, Entry> by_digest_;
  std::vector<SharedBatch<M>> fresh_;          // canonical since round_reset
  std::vector<std::uint64_t> digest_scratch_;  // reused across interns
  std::uint64_t gen_ = 0;
};

// The windowed inbox.  `round()` is k_i; readable rounds are {k-1, k}.
template <typename M>
class InboxWindow {
 public:
  // Far-early parking is an escape hatch for unsynchronised engines, not a
  // second inbox: a peer running unboundedly ahead of us would grow
  // `future_` without limit.  The cap is generous (real engines park a
  // handful of batches) and enforced on every park, so a runaway producer
  // fails loudly instead of oom-ing the process.
  static constexpr std::size_t kOverflowParkLimit = 1u << 16;

  Round round() const { return cur_; }

  // M_i[k].  Rejects reads outside the {k-1, k} window — the algorithms
  // never read other rounds, and the storage for them is gone.
  const InboxView<M>& at(Round k) const {
    ANON_CHECK_MSG(readable(k),
                   "inbox read outside the {k-1, k} round window");
    return slot(k).materialize();
  }

  bool readable(Round k) const {
    return k >= 1 && k <= cur_ && k + 1 >= cur_;
  }

  // Every live round oldest-first (window slots, then early-round
  // overflow): the weak-set's line-15 all-rounds union.
  template <typename Fn>
  void for_each_live(Fn fn) const {
    for (Round k = (cur_ >= 2 ? cur_ - 1 : Round{1}); k <= cur_ + 1; ++k) {
      const Slot& s = slot(k);
      if (!s.empty()) fn(k, s.materialize());
    }
    for (const auto& [k, s] : future_)
      if (!s.empty()) fn(k, s.materialize());
  }

  // Receive a shared (interned) batch for round k.  A far-early batch
  // arriving with the parking already at its cap is shed (a counted drop,
  // surfaced through the engines' metrics) rather than parked — under
  // heavy reorder/churn an over-eager peer is a degradation to report,
  // not a reason to abort the process.
  void add_shared(SharedBatch<M> batch, Round k) {
    ANON_CHECK(k >= 1);
    const bool parked = k > cur_ + 1;
    if (parked && parked_batches_ >= kOverflowParkLimit) {
      ++overflow_dropped_;
      return;
    }
    writable_slot(k).parts.push_back(std::move(batch));
    if (parked) {
      ++parked_batches_;
      if (parked_batches_ > overflow_high_water_)
        overflow_high_water_ = parked_batches_;
    }
  }

  // Receive messages by value (unsynchronised engines, tests): wrapped
  // into a private batch.
  void add_local(std::vector<M> msgs, Round k) {
    ANON_CHECK(k >= 1);
    add_shared(std::make_shared<MessageBatch<M>>(
                   detail::make_batch(std::move(msgs))),
               k);
  }

  // Single-message fast path (the own round message, every round): builds
  // the batch directly — a one-element batch is trivially canonical.  The
  // last built batch is cached: once the process's message freezes (it
  // decided), every subsequent round reuses the same immutable object and
  // the inbox write allocates nothing.
  void add_local(M m, Round k) {
    ANON_CHECK(k >= 1);
    const std::uint64_t d = MessageDigest<M>::of(m);
    if (own_cache_ && own_cache_->digests[0] == d &&
        own_cache_->msgs[0] == m) {
      add_shared(own_cache_, k);
      return;
    }
    auto batch = std::make_shared<MessageBatch<M>>();
    batch->digests.push_back(d);
    batch->msgs.push_back(std::move(m));
    batch->digest =
        detail::fold_batch_digest(1, batch->digests.data());
    own_cache_ = batch;
    add_shared(std::move(batch), k);
  }

  // Slides the window forward: the current round becomes `k` and slots
  // that fell out of {k-1, k, k+1} are dropped.
  void advance_to(Round k) {
    ANON_CHECK(k >= cur_);
    while (cur_ < k) {
      ++cur_;
      if (cur_ >= 2) ring_[slot_index(cur_ - 2)].clear();
      auto it = future_.find(cur_ + 1);
      if (it != future_.end()) {
        parked_batches_ -= it->second.parts.size();
        ring_[slot_index(cur_ + 1)].absorb(std::move(it->second));
        future_.erase(it);
      }
    }
  }

  // Batches currently parked in the far-early overflow, and the most that
  // were ever parked at once.  Surfaced through the engines' metrics so
  // unsynchronised deployments can watch for runaway peers.
  std::size_t overflow_parked() const { return parked_batches_; }
  std::size_t overflow_high_water() const { return overflow_high_water_; }
  // Far-early batches shed at the park limit instead of parked.
  std::size_t overflow_dropped() const { return overflow_dropped_; }

  // Content digest of everything still live (window slots and overflow),
  // mixing in the current round.  Equal windows digest equally; collisions
  // are resolved by same_content.  Used by the cohort engine to bucket
  // candidate merges (see net/cohort.hpp).
  std::uint64_t content_digest() const {
    std::uint64_t h = 0x6b9f1e8c24a35d71ULL ^ cur_;
    for_each_live([&h](Round k, const InboxView<M>& view) {
      h = detail::mix_digest(h, k);
      h = detail::mix_digest(h, view.size());
      for (const auto& [d, m] : view.items()) h = detail::mix_digest(h, d);
    });
    return h;
  }

  // Exact set-content equality of the live rounds: same current round and,
  // round for round, the same materialized message sets.  Two windows that
  // compare equal are indistinguishable to every future compute (views are
  // rebuilt from set content, so part structure does not matter).
  bool same_content(const InboxWindow& other) const {
    if (cur_ != other.cur_) return false;
    std::vector<std::pair<Round, const InboxView<M>*>> a, b;
    for_each_live([&a](Round k, const InboxView<M>& v) { a.emplace_back(k, &v); });
    other.for_each_live(
        [&b](Round k, const InboxView<M>& v) { b.emplace_back(k, &v); });
    if (a.size() != b.size()) return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (a[i].first != b[i].first) return false;
      const auto& va = a[i].second->items();
      const auto& vb = b[i].second->items();
      if (va.size() != vb.size()) return false;
      for (std::size_t j = 0; j < va.size(); ++j)
        if (va[j].first != vb[j].first || !(*va[j].second == *vb[j].second))
          return false;
    }
    return true;
  }

 private:
  struct Slot {
    std::vector<SharedBatch<M>> parts;
    mutable InboxView<M> view;
    mutable std::size_t merged_parts = 0;  // parts already in `view`

    bool empty() const { return parts.empty(); }

    void clear() {
      parts.clear();
      view.items_.clear();
      merged_parts = 0;
    }

    void absorb(Slot&& other) {
      for (auto& b : other.parts) parts.push_back(std::move(b));
      other.clear();
    }

    // Rebuilds the merged view if new parts arrived since the last read.
    // Cost: one (digest, content)-sort over the accumulated pointers; a
    // pointer-equal part pair (the interner collapse case) dedups without
    // any content comparison, since equal pointers yield equal digests.
    const InboxView<M>& materialize() const {
      if (merged_parts == parts.size()) return view;
      auto& items = view.items_;
      items.clear();
      std::size_t total = 0;
      for (const auto& b : parts) total += b->size();
      items.reserve(total);
      for (const auto& b : parts)
        for (std::size_t i = 0; i < b->msgs.size(); ++i)
          items.emplace_back(b->digests[i], &b->msgs[i]);
      std::sort(items.begin(), items.end(), [](const auto& x, const auto& y) {
        return detail::digest_content_less(x.first, *x.second, y.first,
                                           *y.second);
      });
      items.erase(std::unique(items.begin(), items.end(),
                              [](const auto& x, const auto& y) {
                                return x.first == y.first &&
                                       (x.second == y.second ||
                                        *x.second == *y.second);
                              }),
                  items.end());
      merged_parts = parts.size();
      return view;
    }
  };

  std::size_t slot_index(Round k) const {
    return static_cast<std::size_t>(k & 3);
  }

  const Slot& slot(Round k) const { return ring_[slot_index(k)]; }

  Slot& writable_slot(Round k) {
    if (cur_ >= 2 && k < cur_ - 1) k = cur_ - 1;  // clamp far-late rounds
    if (k > cur_ + 1) return future_[k];          // park far-early rounds
    return ring_[slot_index(k)];
  }

  Slot ring_[4];
  std::map<Round, Slot> future_;  // rounds > cur_ + 1 (unsynchronised only)
  SharedBatch<M> own_cache_;      // last single-message batch built
  Round cur_ = 0;
  std::size_t parked_batches_ = 0;       // batches currently in future_
  std::size_t overflow_high_water_ = 0;  // max parked_batches_ ever
  std::size_t overflow_dropped_ = 0;     // shed at kOverflowParkLimit
};

}  // namespace anon
