// Basic identifiers for the round framework and the simulator.
//
// IMPORTANT ANONYMITY NOTE: `ProcId` indexes processes *inside the
// simulator* (for scheduling, crash injection, traces, metrics).  The
// algorithms themselves never see a ProcId — GIRAF hands them only round
// numbers and *sets* of messages, exactly as in the paper's anonymous model.
#pragma once

#include <cstddef>
#include <cstdint>

namespace anon {

using ProcId = std::size_t;   // simulator-only process index
using Round = std::uint64_t;  // 1-based round number (0 = not started)

inline constexpr Round kNoRound = 0;

}  // namespace anon
