#include "svc/node.hpp"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <fcntl.h>

namespace anon {

namespace {

constexpr std::size_t kMaxRequestBytes = 1u << 16;

bool set_nonblocking_fd(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  return flags >= 0 && fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

}  // namespace

LiveNode::LiveNode(LiveNodeOptions opt)
    : opt_(opt),
      jitter_(opt.seed, opt.max_jitter, opt.loss),
      consensus_(std::make_unique<EsConsensus>(opt.proposal)),
      weakset_(std::make_unique<MsWeakSetAutomaton>()) {
  ws_automaton_ = static_cast<MsWeakSetAutomaton*>(&weakset_.automaton());
}

LiveNode::~LiveNode() {
  if (listen_fd_ >= 0) ::close(listen_fd_);
  for (ClientConn& c : conns_)
    if (c.fd >= 0) ::close(c.fd);
  if (transport_) transport_->close();
}

bool LiveNode::open() {
  transport_ = make_transport(opt_.socket);
  if (!transport_->open()) {
    error_ = transport_->error();
    return false;
  }
  if (!open_client_listener()) {
    transport_->close();
    return false;
  }
  return true;
}

std::uint16_t LiveNode::data_port() const {
  return transport_ ? transport_->port() : 0;
}

void LiveNode::connect_peers(const std::vector<SvcEndpoint>& peers) {
  transport_->connect_peers(peers);
}

bool LiveNode::open_client_listener() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    error_ = std::string("socket(client): ") + std::strerror(errno);
    return false;
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = 0;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(listen_fd_, 64) != 0 || !set_nonblocking_fd(listen_fd_)) {
    error_ = std::string("bind/listen(client): ") + std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  socklen_t len = sizeof(addr);
  if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) == 0)
    client_port_ = ntohs(addr.sin_port);
  return client_port_ != 0;
}

void LiveNode::run() {
  event_loop();
  // Never leave a client hanging: whatever is still pending when the loop
  // ends (max_rounds, crash drill, external stop) resolves as a timeout —
  // the live face of the simulator's `undecided` watchdog outcome.
  fail_all_pending(SvcStatus::kTimeout);
  frames_sent_ = transport_->frames_sent();
  bytes_sent_ = transport_->bytes_sent();
  transport_->close();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  listen_fd_ = -1;
  for (ClientConn& c : conns_)
    if (c.fd >= 0) ::close(c.fd), c.fd = -1;
}

void LiveNode::event_loop() {
  using Clock = std::chrono::steady_clock;
  const auto start = Clock::now();
  PacemakerOptions popt;
  popt.period = opt_.period;
  popt.min_timeout = opt_.period + std::chrono::milliseconds(2);
  popt.max_timeout = opt_.period * 4 + std::chrono::milliseconds(8);
  popt.seed = opt_.seed + 0x9e3779b9u * (opt_.index + 1);
  popt.peers = opt_.n;
  popt.stabilize_after = opt_.stabilize_after;
  // UDP attributes senders, so rounds can gate on the rotating source's
  // batch (the live round-source property; see pacemaker.hpp).  TCP
  // inbound is unattributed — gating off, decisions are best-effort there.
  popt.gate_on_source = opt_.socket == SvcSocketKind::kUdp;
  popt.self = opt_.index;
  pacemaker_ = std::make_unique<RoundPacemaker>(popt, start);

  std::vector<struct pollfd> fds;
  std::vector<std::size_t> conn_map;
  std::vector<Transport::Datagram> datagrams;

  while (!stop_.load(std::memory_order_acquire)) {
    auto now = Clock::now();

    // Jitter-delayed frames whose due time passed.
    if (!due_.empty()) {
      std::size_t kept = 0;
      for (std::size_t i = 0; i < due_.size(); ++i) {
        if (due_[i].due <= now)
          deliver(due_[i].frame, due_[i].peer, now);
        else
          due_[kept++] = std::move(due_[i]);
      }
      due_.resize(kept);
    }

    if (pacemaker_->can_close(now)) {
      if (pacemaker_->round() > opt_.max_rounds) break;
      if (pacemaker_->round() >= opt_.crash_at) break;  // crash: silent stop
      do_round(now);
      continue;
    }

    // Sleep until the next deadline — or, in a gated wait (deadline passed
    // but the round source's batch is still in flight), until the hard
    // give-up point; an arriving frame wakes the poll earlier.
    const auto wake = now < pacemaker_->deadline() ? pacemaker_->deadline()
                                                   : pacemaker_->hard_deadline();
    auto timeout = std::chrono::duration_cast<std::chrono::milliseconds>(
                       wake - now) +
                   std::chrono::milliseconds(1);
    for (const DueFrame& d : due_)
      timeout = std::min(
          timeout, std::chrono::duration_cast<std::chrono::milliseconds>(
                       d.due - now) +
                       std::chrono::milliseconds(1));
    if (timeout.count() < 0) timeout = std::chrono::milliseconds(0);

    fds.clear();
    const std::size_t tcount = transport_->append_pollfds(&fds);
    const std::size_t listen_at = fds.size();
    if (listen_fd_ >= 0) fds.push_back(pollfd{listen_fd_, POLLIN, 0});
    conn_map.clear();
    for (std::size_t i = 0; i < conns_.size(); ++i) {
      if (conns_[i].fd < 0) continue;
      fds.push_back(pollfd{conns_[i].fd, POLLIN, 0});
      conn_map.push_back(i);
    }
    poll_fds(fds, timeout);

    now = Clock::now();
    datagrams.clear();
    transport_->drain(fds.data(), tcount, &datagrams);
    for (Transport::Datagram& d : datagrams) ingress(std::move(d), now);
    if (listen_fd_ >= 0 && (fds[listen_at].revents & POLLIN)) accept_clients();
    for (std::size_t j = 0; j < conn_map.size(); ++j) {
      const struct pollfd& p = fds[listen_at + (listen_fd_ >= 0 ? 1 : 0) + j];
      if (p.revents & (POLLIN | POLLHUP | POLLERR)) read_client(conn_map[j]);
    }
  }
}

void LiveNode::do_round(std::chrono::steady_clock::time_point now) {
  // Consensus round: compute, broadcast the whole round batch (own message
  // plus relays — Algorithm 1's send(⟨M_i[k_i], k_i⟩)).
  {
    auto out = consensus_.end_of_round();
    std::vector<ValueSet> batch(out.batch.begin(), out.batch.end());
    ServiceFrame f;
    f.kind = SvcFrameKind::kConsensusRound;
    f.epoch = opt_.epoch;
    f.round = out.round;
    f.payload = encode_valueset_batch(batch);
    transport_->broadcast(encode_service_frame(f));
    rounds_executed_ = out.round;
  }
  // Weak-set round on the same cadence.
  {
    auto out = weakset_.end_of_round();
    std::vector<ValueSet> batch(out.batch.begin(), out.batch.end());
    ServiceFrame f;
    f.kind = SvcFrameKind::kWeaksetRound;
    f.epoch = opt_.epoch;
    f.round = out.round;
    f.payload = encode_valueset_batch(batch);
    transport_->broadcast(encode_service_frame(f));
    // Visibility certificate for the in-flight add.  The round just
    // consumed is r = out.round - 1 (its view is still retained).  If every
    // peer's round-r weak-set frame arrived and every round-r message holds
    // the value, then every node's own round-r message — its proposed set —
    // holds it; proposed sets are monotone from round 1 on, so from here
    // every get at every node returns the value.  (Round-1 messages come
    // from initialize() and are always empty, so r >= 2.)
    if (ws_add_active_ && !ws_add_confirmed_ && out.round >= 3) {
      const Round r = out.round - 1;
      std::size_t frames = 0;
      for (const auto& [tag, count] : ws_tag_counts_)
        if (tag == r) frames = count;
      if (frames + 1 >= opt_.n) {
        bool in_all = true;
        for (const ValueSet& m : weakset_.inbox(r))
          if (!m.contains(ws_adds_.front().value)) {
            in_all = false;
            break;
          }
        ws_add_confirmed_ = in_all;
      }
      std::erase_if(ws_tag_counts_,
                    [r](const auto& e) { return e.first + 1 < r; });
    }
  }
  abd_tick();
  pacemaker_->close_round(now);
  stabilized_ = pacemaker_->stabilized();
  stabilized_at_ = pacemaker_->stabilized_at();
  if (!decision_.has_value()) {
    decision_ = consensus_.decision();
    if (decision_.has_value()) decision_round_ = rounds_executed_;
  }
  service_waiters();
}

void LiveNode::ingress(Transport::Datagram&& d,
                       std::chrono::steady_clock::time_point now) {
  auto f = decode_service_frame(d.payload);
  if (!f || f->epoch != opt_.epoch) return;  // malformed or stale cluster
  ++frames_received_;
  // The live fault layer mirrors the simulator's safety contract: frames
  // attributed to the round's rotating source (round mod n) are exempt
  // from every injected fault (env/faults.hpp `exempt_source`) — everyone
  // still hears the source's batch, the property the agreement proof
  // needs, so only termination degrades under loss.  TCP inbound cannot
  // attribute senders, so exemption (and thus the loss knob) is a UDP
  // feature.
  if (d.peer != Transport::kUnknownPeer && opt_.n > 0 &&
      d.peer == f->round % opt_.n) {
    deliver(*f, d.peer, now);
    return;
  }
  const auto delay = jitter_.delivery_delay(opt_.index);
  if (!delay.has_value()) {
    ++fault_drops_;
    return;
  }
  if (delay->count() > 0) {
    due_.push_back(DueFrame{now + *delay, std::move(*f), d.peer});
    return;
  }
  deliver(*f, d.peer, now);
}

void LiveNode::deliver(const ServiceFrame& f, std::size_t peer,
                       std::chrono::steady_clock::time_point now) {
  switch (f.kind) {
    case SvcFrameKind::kConsensusRound: {
      if (f.round == 0) return;
      pacemaker_->note_frame(peer, f.round, now);
      auto batch = decode_valueset_batch(f.payload);
      if (!batch) return;
      consensus_.receive(std::move(*batch), f.round);
      break;
    }
    case SvcFrameKind::kWeaksetRound: {
      if (f.round == 0) return;
      auto batch = decode_valueset_batch(f.payload);
      if (!batch) return;
      weakset_.receive(std::move(*batch), f.round);
      // Count frames per tag for the add-visibility certificate (messages
      // dedup in the inbox — anonymity — but frames are countable).
      bool counted = false;
      for (auto& [tag, count] : ws_tag_counts_)
        if (tag == f.round) {
          ++count;
          counted = true;
        }
      if (!counted) ws_tag_counts_.emplace_back(f.round, 1);
      break;
    }
    case SvcFrameKind::kAbd: {
      auto m = decode_abd_wire(f.payload);
      if (!m) return;
      handle_abd(*m);
      break;
    }
    case SvcFrameKind::kHeartbeat:
      pacemaker_->note_frame(peer, f.round, now);
      break;
  }
}

Bytes LiveNode::abd_frame(const AbdWire& m) const {
  ServiceFrame f;
  f.kind = SvcFrameKind::kAbd;
  f.epoch = opt_.epoch;
  f.round = pacemaker_ ? pacemaker_->round() : 0;
  f.payload = encode_abd_wire(m);
  return encode_service_frame(f);
}

void LiveNode::handle_abd(const AbdWire& m) {
  switch (m.type) {
    case AbdWireType::kQuery: {
      if (m.origin >= opt_.n) return;
      AbdWire resp;
      resp.type = AbdWireType::kQueryResp;
      resp.op_id = m.op_id;
      resp.origin = m.origin;
      resp.replica = static_cast<std::uint32_t>(opt_.index);
      resp.ts = abd_tag_.ts;
      resp.wid = abd_tag_.wid;
      resp.has_value = abd_has_value_;
      resp.value = abd_value_;
      transport_->send_to(m.origin, abd_frame(resp));
      break;
    }
    case AbdWireType::kStore: {
      if (m.origin >= opt_.n) return;
      const AbdTag incoming{m.ts, m.wid};
      if (m.has_value && incoming > abd_tag_) {
        abd_tag_ = incoming;
        abd_has_value_ = true;
        abd_value_ = m.value;
      }
      AbdWire ack;
      ack.type = AbdWireType::kStoreAck;
      ack.op_id = m.op_id;
      ack.origin = m.origin;
      ack.replica = static_cast<std::uint32_t>(opt_.index);
      transport_->send_to(m.origin, abd_frame(ack));
      break;
    }
    case AbdWireType::kQueryResp: {
      for (AbdOp& op : abd_ops_) {
        if (op.op_id != m.op_id || op.store_phase) continue;
        if (m.replica >= op.heard.size() || op.heard[m.replica]) break;
        op.heard[m.replica] = true;
        ++op.heard_count;
        const AbdTag tag{m.ts, m.wid};
        if (m.has_value && (!op.best_has_value || tag > op.best)) {
          op.best = tag;
          op.best_has_value = true;
          op.best_value = m.value;
        }
        if (op.heard_count >= majority()) abd_start_phase(op, true);
        break;
      }
      break;
    }
    case AbdWireType::kStoreAck: {
      for (std::size_t i = 0; i < abd_ops_.size(); ++i) {
        AbdOp& op = abd_ops_[i];
        if (op.op_id != m.op_id || !op.store_phase) continue;
        if (m.replica >= op.heard.size() || op.heard[m.replica]) break;
        op.heard[m.replica] = true;
        ++op.heard_count;
        if (op.heard_count >= majority()) {
          abd_finish(op);
          abd_ops_.erase(abd_ops_.begin() + static_cast<std::ptrdiff_t>(i));
        }
        break;
      }
      break;
    }
  }
}

void LiveNode::abd_start_phase(AbdOp& op, bool store) {
  op.store_phase = store;
  op.heard.assign(opt_.n, false);
  op.heard_count = 0;
  if (store && op.is_write) {
    // Write: tag (max_ts + 1, own id), our value.
    op.best = AbdTag{op.best.ts + 1, static_cast<std::uint32_t>(opt_.index)};
    op.best_has_value = true;
    op.best_value = op.write_value;
  }
  // Read write-back keeps the queried max (the classic atomicity fix);
  // with no value in the system the store phase is a no-op ack round.
  AbdWire m;
  m.type = store ? AbdWireType::kStore : AbdWireType::kQuery;
  m.op_id = op.op_id;
  m.origin = static_cast<std::uint32_t>(opt_.index);
  m.ts = op.best.ts;
  m.wid = op.best.wid;
  m.has_value = op.best_has_value;
  m.value = op.best_value;
  transport_->broadcast(abd_frame(m));
}

void LiveNode::abd_tick() {
  // Retransmit the in-flight phase of every pending op: loss-tolerant
  // quorums by repetition, deduplicated at the coordinator by replica id.
  for (AbdOp& op : abd_ops_) {
    AbdWire m;
    m.type = op.store_phase ? AbdWireType::kStore : AbdWireType::kQuery;
    m.op_id = op.op_id;
    m.origin = static_cast<std::uint32_t>(opt_.index);
    m.ts = op.best.ts;
    m.wid = op.best.wid;
    m.has_value = op.store_phase ? op.best_has_value : false;
    m.value = op.best_value;
    if (!op.store_phase) {
      m.ts = 0;
      m.wid = 0;
      m.value = 0;
    }
    transport_->broadcast(abd_frame(m));
  }
}

void LiveNode::abd_finish(AbdOp& op) {
  ClientResponse resp;
  resp.status = SvcStatus::kOk;
  resp.request_id = op.request_id;
  resp.info = op.best.ts;
  if (!op.is_write && op.best_has_value)
    resp.values.push_back(Value(op.best_value));
  respond(op.conn, resp);
}

void LiveNode::accept_clients() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;
    if (!set_nonblocking_fd(fd)) {
      ::close(fd);
      continue;
    }
    conns_.push_back(ClientConn{fd, {}});
  }
}

void LiveNode::read_client(std::size_t conn_idx) {
  ClientConn& c = conns_[conn_idx];
  if (c.fd < 0) return;
  std::uint8_t buf[4096];
  for (;;) {
    const ssize_t got = ::recv(c.fd, buf, sizeof(buf), 0);
    if (got < 0) break;  // EAGAIN
    if (got == 0) {
      ::close(c.fd);
      c.fd = -1;
      break;
    }
    c.buf.insert(c.buf.end(), buf, buf + got);
  }
  std::size_t pos = 0;
  while (c.buf.size() - pos >= 4) {
    std::uint32_t len = 0;
    for (int i = 0; i < 4; ++i)
      len |= static_cast<std::uint32_t>(c.buf[pos + i]) << (8 * i);
    if (len > kMaxRequestBytes) {  // corrupt stream
      if (c.fd >= 0) ::close(c.fd);
      c.fd = -1;
      c.buf.clear();
      return;
    }
    if (c.buf.size() - pos - 4 < len) break;
    Bytes body(c.buf.begin() + pos + 4, c.buf.begin() + pos + 4 + len);
    pos += 4 + len;
    auto req = decode_client_request(body);
    if (!req) {
      ClientResponse resp;
      resp.status = SvcStatus::kError;
      respond(conn_idx, resp);
      continue;
    }
    handle_request(conn_idx, *req);
  }
  if (pos > 0) c.buf.erase(c.buf.begin(), c.buf.begin() + pos);
}

void LiveNode::handle_request(std::size_t conn_idx, const ClientRequest& req) {
  ++client_ops_;
  const Round round = pacemaker_ ? pacemaker_->round() : 0;
  const bool watchdog_fired =
      opt_.watchdog_rounds > 0 && !decision_.has_value() &&
      rounds_executed_ >= opt_.watchdog_rounds;
  switch (req.op) {
    case SvcOp::kStatus: {
      ClientResponse resp;
      resp.status = SvcStatus::kOk;
      resp.request_id = req.request_id;
      resp.info = round;
      if (decision_.has_value()) resp.values.push_back(*decision_);
      respond(conn_idx, resp);
      break;
    }
    case SvcOp::kDecision: {
      if (decision_.has_value()) {
        ClientResponse resp;
        resp.status = SvcStatus::kOk;
        resp.request_id = req.request_id;
        resp.info = rounds_executed_;
        resp.values.push_back(*decision_);
        respond(conn_idx, resp);
      } else if (watchdog_fired) {
        ClientResponse resp;
        resp.status = SvcStatus::kTimeout;
        resp.request_id = req.request_id;
        resp.info = rounds_executed_;
        respond(conn_idx, resp);
      } else {
        decision_waiters_.push_back(PendingWait{conn_idx, req.request_id});
      }
      break;
    }
    case SvcOp::kWsAdd: {
      if (!req.has_value) {
        ClientResponse resp;
        resp.status = SvcStatus::kError;
        resp.request_id = req.request_id;
        respond(conn_idx, resp);
        break;
      }
      ws_adds_.push_back(WsAdd{conn_idx, req.request_id, Value(req.value)});
      service_waiters();
      break;
    }
    case SvcOp::kWsGet: {
      ClientResponse resp;
      resp.status = SvcStatus::kOk;
      resp.request_id = req.request_id;
      resp.info = round;
      for (const Value& v : ws_automaton_->get()) resp.values.push_back(v);
      respond(conn_idx, resp);
      break;
    }
    case SvcOp::kRegRead:
    case SvcOp::kRegWrite: {
      AbdOp op;
      op.is_write = req.op == SvcOp::kRegWrite;
      if (op.is_write && !req.has_value) {
        ClientResponse resp;
        resp.status = SvcStatus::kError;
        resp.request_id = req.request_id;
        respond(conn_idx, resp);
        break;
      }
      op.write_value = req.value;
      op.op_id = (static_cast<std::uint64_t>(opt_.index) << 40) | ++abd_next_op_;
      op.conn = conn_idx;
      op.request_id = req.request_id;
      abd_ops_.push_back(op);
      abd_start_phase(abd_ops_.back(), false);
      break;
    }
  }
}

void LiveNode::respond(std::size_t conn_idx, const ClientResponse& resp) {
  if (conn_idx >= conns_.size()) return;
  ClientConn& c = conns_[conn_idx];
  if (c.fd < 0) return;
  const Bytes body = encode_client_response(resp);
  ByteWriter w;
  w.u32(static_cast<std::uint32_t>(body.size()));
  Bytes framed = w.take();
  framed.insert(framed.end(), body.begin(), body.end());
  // Responses are tiny (≪ socket buffer); a short write means the client
  // died — close and let pending ops drop their answers.
  const ssize_t rc = ::send(c.fd, framed.data(), framed.size(), MSG_NOSIGNAL);
  if (rc != static_cast<ssize_t>(framed.size())) {
    ::close(c.fd);
    c.fd = -1;
  }
}

void LiveNode::service_waiters() {
  // Decisions.
  if (decision_.has_value() && !decision_waiters_.empty()) {
    for (const PendingWait& wtr : decision_waiters_) {
      ClientResponse resp;
      resp.status = SvcStatus::kOk;
      resp.request_id = wtr.request_id;
      resp.info = rounds_executed_;
      resp.values.push_back(*decision_);
      respond(wtr.conn, resp);
    }
    decision_waiters_.clear();
  } else if (opt_.watchdog_rounds > 0 && !decision_.has_value() &&
             rounds_executed_ >= opt_.watchdog_rounds &&
             !decision_waiters_.empty()) {
    for (const PendingWait& wtr : decision_waiters_) {
      ClientResponse resp;
      resp.status = SvcStatus::kTimeout;
      resp.request_id = wtr.request_id;
      resp.info = rounds_executed_;
      respond(wtr.conn, resp);
    }
    decision_waiters_.clear();
  }
  // Weak-set adds: the in-flight add completed when the automaton
  // unblocked (its value reached WRITTEN — Algorithm 4 line 11).
  if (ws_add_active_ && !ws_automaton_->add_blocked() && ws_add_confirmed_) {
    const WsAdd& done = ws_adds_.front();
    ClientResponse resp;
    resp.status = SvcStatus::kOk;
    resp.request_id = done.request_id;
    resp.info = rounds_executed_;
    respond(done.conn, resp);
    ws_adds_.pop_front();
    ws_add_active_ = false;
  }
  // Hold adds until the automaton has initialized (first end_of_round):
  // initialize() clears PROPOSED and BLOCK, so an earlier start_add would
  // be silently wiped and "complete" with its value lost.
  if (!ws_add_active_ && !ws_adds_.empty() && weakset_.round() >= 1) {
    ws_automaton_->start_add(ws_adds_.front().value);
    ws_add_active_ = true;
    ws_add_confirmed_ = false;
  }
}

void LiveNode::fail_all_pending(SvcStatus status) {
  for (const PendingWait& wtr : decision_waiters_) {
    ClientResponse resp;
    resp.status = status;
    resp.request_id = wtr.request_id;
    resp.info = rounds_executed_;
    respond(wtr.conn, resp);
  }
  decision_waiters_.clear();
  for (const WsAdd& add : ws_adds_) {
    ClientResponse resp;
    resp.status = status;
    resp.request_id = add.request_id;
    resp.info = rounds_executed_;
    respond(add.conn, resp);
  }
  ws_adds_.clear();
  ws_add_active_ = false;
  for (const AbdOp& op : abd_ops_) {
    ClientResponse resp;
    resp.status = status;
    resp.request_id = op.request_id;
    resp.info = rounds_executed_;
    respond(op.conn, resp);
  }
  abd_ops_.clear();
}

}  // namespace anon
