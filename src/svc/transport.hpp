// The anonsvc connection layer: real loopback sockets under a poll()
// event loop (the xlane-style connection-layer / logic-layer split — the
// logic layer above never sees a file descriptor).
//
// Two interchangeable implementations:
//   * UdpTransport      one AF_INET datagram socket per node, broadcast =
//                       sendto every peer (including self); the native
//                       shape for anonymous all-to-all rounds.
//   * TcpMeshTransport  a listen socket plus one outbound stream per peer
//                       with u32 length-prefix framing — the fallback for
//                       environments that police datagrams.
//
// Anonymity on the wire: frames carry no sender identity.  drain() does
// report a best-effort `peer` index (UDP source-port match; TCP inbound
// streams are kUnknownPeer) — that index feeds the pacemaker's timeliness
// accounting and metrics only, never the protocol logic, mirroring how the
// simulator's DelayModel knows link identities while processes stay
// anonymous.
//
// All sockets bind 127.0.0.1 with port 0 by default; the bound port is
// discovered via getsockname and exchanged out-of-band by the daemon
// (LiveCluster) before connect_peers.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "runtime/codec.hpp"

struct pollfd;  // <poll.h> kept out of the header

namespace anon {

struct SvcEndpoint {
  std::uint16_t port = 0;  // 127.0.0.1:<port>

  friend bool operator==(const SvcEndpoint&, const SvcEndpoint&) = default;
};

enum class SvcSocketKind : std::uint8_t { kUdp, kTcp };

class Transport {
 public:
  static constexpr std::size_t kUnknownPeer = static_cast<std::size_t>(-1);

  struct Datagram {
    Bytes payload;
    std::size_t peer = kUnknownPeer;  // diagnostics only (see header note)
  };

  virtual ~Transport() = default;

  // Binds the local socket(s); false (with error()) on failure.
  virtual bool open() = 0;
  virtual std::uint16_t port() const = 0;
  // Learns where the peers live (index-aligned with the cluster).
  virtual void connect_peers(const std::vector<SvcEndpoint>& peers) = 0;

  virtual void broadcast(const Bytes& frame) = 0;          // every peer + self
  virtual void send_to(std::size_t peer, const Bytes& frame) = 0;

  // Event-loop integration: the node owns one poll() across the transport
  // and its client sockets.  append_pollfds() returns how many entries it
  // appended; after poll() the same slice is handed back to drain().
  virtual std::size_t append_pollfds(std::vector<struct pollfd>* fds) = 0;
  virtual void drain(const struct pollfd* fds, std::size_t count,
                     std::vector<Datagram>* out) = 0;

  virtual void close() = 0;

  const std::string& error() const { return error_; }
  std::uint64_t frames_sent() const { return frames_sent_; }
  std::uint64_t frames_received() const { return frames_received_; }
  std::uint64_t bytes_sent() const { return bytes_sent_; }

 protected:
  std::string error_;
  std::uint64_t frames_sent_ = 0;
  std::uint64_t frames_received_ = 0;
  std::uint64_t bytes_sent_ = 0;
};

std::unique_ptr<Transport> make_transport(SvcSocketKind kind);

// Shared helper: poll() the given fds for up to `timeout`; returns the
// number of ready descriptors (0 on timeout, <0 swallowed to 0 on EINTR).
int poll_fds(std::vector<struct pollfd>& fds, std::chrono::milliseconds timeout);

}  // namespace anon
