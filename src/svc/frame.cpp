#include "svc/frame.hpp"

#include <algorithm>

namespace anon {

namespace {

// Sanity bound shared with runtime/codec.cpp: a corrupt count field must
// not drive a multi-gigabyte allocation before the per-element decodes
// fail.  Real batches are tiny (≤ n messages of ≤ 4 values each).
constexpr std::uint32_t kMaxCount = 1u << 24;

void put_value(ByteWriter& w, const Value& v) {
  if (v.is_bottom()) {
    w.u8(0);
  } else {
    w.u8(1);
    w.i64(v.get());
  }
}

std::optional<Value> get_value(ByteReader& r) {
  auto kind = r.u8();
  if (!kind) return std::nullopt;
  if (*kind == 0) return Value::Bottom();
  if (*kind != 1) return std::nullopt;
  auto payload = r.i64();
  if (!payload) return std::nullopt;
  return Value(*payload);
}

bool valid_frame_kind(std::uint8_t k) {
  return k >= static_cast<std::uint8_t>(SvcFrameKind::kConsensusRound) &&
         k <= static_cast<std::uint8_t>(SvcFrameKind::kHeartbeat);
}

}  // namespace

Bytes encode_service_frame(const ServiceFrame& f) {
  ByteWriter w;
  w.u8(kSvcMagic);
  w.u8(f.version);
  w.u8(static_cast<std::uint8_t>(f.kind));
  w.u64(f.epoch);
  w.u64(f.round);
  w.u32(static_cast<std::uint32_t>(f.payload.size()));
  for (std::uint8_t b : f.payload) w.u8(b);
  return w.take();
}

std::optional<ServiceFrame> decode_service_frame(const Bytes& in) {
  ByteReader r(in);
  auto magic = r.u8();
  if (!magic || *magic != kSvcMagic) return std::nullopt;
  auto version = r.u8();
  if (!version || *version != kSvcWireVersion) return std::nullopt;
  auto kind = r.u8();
  if (!kind || !valid_frame_kind(*kind)) return std::nullopt;
  auto epoch = r.u64();
  auto round = r.u64();
  auto len = r.u32();
  if (!epoch || !round || !len) return std::nullopt;
  // The length must match the bytes actually present: a frame is one
  // datagram, so trailing garbage means corruption, not pipelining.
  constexpr std::size_t kHeader = 3 + 8 + 8 + 4;
  if (in.size() != kHeader + *len) return std::nullopt;
  ServiceFrame f;
  f.version = *version;
  f.kind = static_cast<SvcFrameKind>(*kind);
  f.epoch = *epoch;
  f.round = *round;
  f.payload.assign(in.begin() + kHeader, in.end());
  return f;
}

Bytes encode_valueset_batch(const std::vector<ValueSet>& batch) {
  ByteWriter w;
  w.u32(static_cast<std::uint32_t>(batch.size()));
  for (const ValueSet& m : batch) {
    const Bytes b = encode_es_message(m);
    w.u32(static_cast<std::uint32_t>(b.size()));
    for (std::uint8_t byte : b) w.u8(byte);
  }
  return w.take();
}

std::optional<std::vector<ValueSet>> decode_valueset_batch(const Bytes& in) {
  ByteReader r(in);
  auto count = r.u32();
  if (!count || *count > kMaxCount) return std::nullopt;
  std::vector<ValueSet> batch;
  // Each message occupies at least its u32 length prefix, so the buffer
  // size bounds any plausible count.
  batch.reserve(std::min<std::size_t>(*count, in.size() / 4 + 1));
  for (std::uint32_t i = 0; i < *count; ++i) {
    auto len = r.u32();
    if (!len || *len > in.size()) return std::nullopt;
    Bytes body;
    body.reserve(*len);
    for (std::uint32_t j = 0; j < *len; ++j) {
      auto byte = r.u8();
      if (!byte) return std::nullopt;
      body.push_back(*byte);
    }
    auto m = decode_es_message(body);
    if (!m) return std::nullopt;
    batch.push_back(std::move(*m));
  }
  if (!r.exhausted()) return std::nullopt;
  return batch;
}

Bytes encode_abd_wire(const AbdWire& m) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(m.type));
  w.u64(m.op_id);
  w.u32(m.origin);
  w.u32(m.replica);
  w.u64(m.ts);
  w.u32(m.wid);
  w.u8(m.has_value ? 1 : 0);
  w.i64(m.value);
  return w.take();
}

std::optional<AbdWire> decode_abd_wire(const Bytes& in) {
  ByteReader r(in);
  auto type = r.u8();
  if (!type || *type < static_cast<std::uint8_t>(AbdWireType::kQuery) ||
      *type > static_cast<std::uint8_t>(AbdWireType::kStoreAck))
    return std::nullopt;
  auto op_id = r.u64();
  auto origin = r.u32();
  auto replica = r.u32();
  auto ts = r.u64();
  auto wid = r.u32();
  auto has_value = r.u8();
  auto value = r.i64();
  if (!op_id || !origin || !replica || !ts || !wid || !has_value || !value)
    return std::nullopt;
  if (*has_value > 1 || !r.exhausted()) return std::nullopt;
  AbdWire out;
  out.type = static_cast<AbdWireType>(*type);
  out.op_id = *op_id;
  out.origin = *origin;
  out.replica = *replica;
  out.ts = *ts;
  out.wid = *wid;
  out.has_value = *has_value == 1;
  out.value = *value;
  return out;
}

Bytes encode_client_request(const ClientRequest& r) {
  ByteWriter w;
  w.u8(r.version);
  w.u8(static_cast<std::uint8_t>(r.op));
  w.u64(r.request_id);
  w.u8(r.has_value ? 1 : 0);
  w.i64(r.value);
  return w.take();
}

std::optional<ClientRequest> decode_client_request(const Bytes& in) {
  ByteReader r(in);
  auto version = r.u8();
  if (!version || *version != kSvcWireVersion) return std::nullopt;
  auto op = r.u8();
  if (!op || *op < static_cast<std::uint8_t>(SvcOp::kStatus) ||
      *op > static_cast<std::uint8_t>(SvcOp::kRegWrite))
    return std::nullopt;
  auto request_id = r.u64();
  auto has_value = r.u8();
  auto value = r.i64();
  if (!request_id || !has_value || !value) return std::nullopt;
  if (*has_value > 1 || !r.exhausted()) return std::nullopt;
  ClientRequest out;
  out.version = *version;
  out.op = static_cast<SvcOp>(*op);
  out.request_id = *request_id;
  out.has_value = *has_value == 1;
  out.value = *value;
  return out;
}

Bytes encode_client_response(const ClientResponse& r) {
  ByteWriter w;
  w.u8(r.version);
  w.u8(static_cast<std::uint8_t>(r.status));
  w.u64(r.request_id);
  w.u64(r.info);
  w.u32(static_cast<std::uint32_t>(r.values.size()));
  for (const Value& v : r.values) put_value(w, v);
  return w.take();
}

std::optional<ClientResponse> decode_client_response(const Bytes& in) {
  ByteReader r(in);
  auto version = r.u8();
  if (!version || *version != kSvcWireVersion) return std::nullopt;
  auto status = r.u8();
  if (!status || *status > static_cast<std::uint8_t>(SvcStatus::kError))
    return std::nullopt;
  auto request_id = r.u64();
  auto info = r.u64();
  auto count = r.u32();
  if (!request_id || !info || !count || *count > kMaxCount)
    return std::nullopt;
  ClientResponse out;
  out.version = *version;
  out.status = static_cast<SvcStatus>(*status);
  out.request_id = *request_id;
  out.info = *info;
  out.values.reserve(std::min<std::size_t>(*count, in.size()));
  for (std::uint32_t i = 0; i < *count; ++i) {
    auto v = get_value(r);
    if (!v) return std::nullopt;
    out.values.push_back(*v);
  }
  if (!r.exhausted()) return std::nullopt;
  return out;
}

}  // namespace anon
