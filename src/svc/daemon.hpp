// LiveCluster: hosts the N anonymous LiveNodes of one anonsvc deployment.
//
// Lifecycle: construct → start() (binds every node's sockets, exchanges the
// discovered endpoints — the out-of-band "configuration" a real deployment
// would read from a config file — and launches one event-loop thread per
// node) → clients connect to client_port(i) → stop_all()/join() → read
// per-node observations.  Nodes are anonymous to each other: the endpoint
// list is positional only, no identities ride the wire (frame.hpp).
#pragma once

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "svc/node.hpp"

namespace anon {

struct LiveClusterOptions {
  std::size_t n = 3;
  std::uint64_t epoch = 1;
  std::uint64_t seed = 1;
  SvcSocketKind socket = SvcSocketKind::kUdp;
  std::chrono::milliseconds period{4};
  std::chrono::milliseconds max_jitter{0};  // per-node ingress jitter
  double loss = 0.0;                        // per-node ingress loss
  Round max_rounds = 100000;
  Round watchdog_rounds = 0;
  Round stabilize_after = 5;
  // Per-node knobs; empty ⇒ defaults (proposal i, never crashes).
  std::vector<Value> proposals;
  std::vector<Round> crash_at;
};

class LiveCluster {
 public:
  explicit LiveCluster(LiveClusterOptions opt);
  ~LiveCluster();

  LiveCluster(const LiveCluster&) = delete;
  LiveCluster& operator=(const LiveCluster&) = delete;

  // Opens every node, distributes the endpoint list, starts the threads.
  bool start();
  const std::string& error() const { return error_; }

  std::size_t n() const { return nodes_.size(); }
  LiveNode& node(std::size_t i) { return *nodes_[i]; }
  const LiveNode& node(std::size_t i) const { return *nodes_[i]; }
  std::uint16_t client_port(std::size_t i) const {
    return nodes_[i]->client_port();
  }

  void stop_all();
  void join();

 private:
  LiveClusterOptions opt_;
  std::vector<std::unique_ptr<LiveNode>> nodes_;
  std::vector<std::thread> threads_;
  std::string error_;
};

}  // namespace anon
