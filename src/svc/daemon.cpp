#include "svc/daemon.hpp"

namespace anon {

LiveCluster::LiveCluster(LiveClusterOptions opt) : opt_(std::move(opt)) {}

LiveCluster::~LiveCluster() {
  stop_all();
  join();
}

bool LiveCluster::start() {
  nodes_.clear();
  nodes_.reserve(opt_.n);
  for (std::size_t i = 0; i < opt_.n; ++i) {
    LiveNodeOptions nopt;
    nopt.index = i;
    nopt.n = opt_.n;
    nopt.epoch = opt_.epoch;
    nopt.seed = opt_.seed;
    nopt.socket = opt_.socket;
    nopt.period = opt_.period;
    nopt.max_jitter = opt_.max_jitter;
    nopt.loss = opt_.loss;
    nopt.max_rounds = opt_.max_rounds;
    nopt.watchdog_rounds = opt_.watchdog_rounds;
    nopt.stabilize_after = opt_.stabilize_after;
    nopt.proposal = i < opt_.proposals.size()
                        ? opt_.proposals[i]
                        : Value(static_cast<std::int64_t>(i));
    if (i < opt_.crash_at.size() && opt_.crash_at[i] != 0)
      nopt.crash_at = opt_.crash_at[i];
    nodes_.push_back(std::make_unique<LiveNode>(nopt));
    if (!nodes_.back()->open()) {
      error_ = nodes_.back()->error();
      nodes_.clear();
      return false;
    }
  }
  std::vector<SvcEndpoint> endpoints;
  endpoints.reserve(opt_.n);
  for (const auto& node : nodes_)
    endpoints.push_back(SvcEndpoint{node->data_port()});
  for (auto& node : nodes_) node->connect_peers(endpoints);
  threads_.reserve(opt_.n);
  for (auto& node : nodes_)
    threads_.emplace_back([raw = node.get()] { raw->run(); });
  return true;
}

void LiveCluster::stop_all() {
  for (auto& node : nodes_) node->stop();
}

void LiveCluster::join() {
  for (std::thread& t : threads_)
    if (t.joinable()) t.join();
  threads_.clear();
}

}  // namespace anon
