#include "svc/transport.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <fcntl.h>

namespace anon {

namespace {

// Frames are one round batch or one quorum message — kilobytes at most.
// A datagram larger than this is garbage and is dropped on receive.
constexpr std::size_t kMaxFrameBytes = 1u << 20;

sockaddr_in loopback_addr(std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  return addr;
}

bool set_nonblocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  return flags >= 0 && fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

std::string errno_message(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

std::uint16_t bound_port(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) return 0;
  return ntohs(addr.sin_port);
}

}  // namespace

int poll_fds(std::vector<struct pollfd>& fds,
             std::chrono::milliseconds timeout) {
  const int ms = static_cast<int>(
      std::min<std::int64_t>(timeout.count(), 60'000));
  const int rc = ::poll(fds.data(), static_cast<nfds_t>(fds.size()),
                        ms < 0 ? 0 : ms);
  return rc < 0 ? 0 : rc;
}

// ---- UDP -------------------------------------------------------------------

class UdpTransport final : public Transport {
 public:
  ~UdpTransport() override { close(); }

  bool open() override {
    fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
    if (fd_ < 0) {
      error_ = errno_message("socket(udp)");
      return false;
    }
    sockaddr_in addr = loopback_addr(0);
    if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      error_ = errno_message("bind(udp)");
      close();
      return false;
    }
    if (!set_nonblocking(fd_)) {
      error_ = errno_message("fcntl(udp)");
      close();
      return false;
    }
    port_ = bound_port(fd_);
    return port_ != 0;
  }

  std::uint16_t port() const override { return port_; }

  void connect_peers(const std::vector<SvcEndpoint>& peers) override {
    peers_.clear();
    peers_.reserve(peers.size());
    for (const SvcEndpoint& p : peers) peers_.push_back(loopback_addr(p.port));
  }

  void broadcast(const Bytes& frame) override {
    for (std::size_t i = 0; i < peers_.size(); ++i) send_to(i, frame);
  }

  void send_to(std::size_t peer, const Bytes& frame) override {
    if (fd_ < 0 || peer >= peers_.size()) return;
    // Loss on a full socket buffer is indistinguishable from network loss
    // — exactly the failure model the algorithms already tolerate.
    const ssize_t rc = ::sendto(fd_, frame.data(), frame.size(), 0,
                                reinterpret_cast<const sockaddr*>(&peers_[peer]),
                                sizeof(peers_[peer]));
    if (rc == static_cast<ssize_t>(frame.size())) {
      ++frames_sent_;
      bytes_sent_ += frame.size();
    }
  }

  std::size_t append_pollfds(std::vector<struct pollfd>* fds) override {
    if (fd_ < 0) return 0;
    fds->push_back(pollfd{fd_, POLLIN, 0});
    return 1;
  }

  void drain(const struct pollfd* fds, std::size_t count,
             std::vector<Datagram>* out) override {
    if (count == 0 || fd_ < 0 || (fds[0].revents & POLLIN) == 0) return;
    std::uint8_t buf[65536];
    for (;;) {
      sockaddr_in src{};
      socklen_t srclen = sizeof(src);
      const ssize_t got = ::recvfrom(fd_, buf, sizeof(buf), 0,
                                     reinterpret_cast<sockaddr*>(&src), &srclen);
      if (got < 0) return;  // EAGAIN: drained
      if (got == 0 || static_cast<std::size_t>(got) > kMaxFrameBytes) continue;
      Datagram d;
      d.payload.assign(buf, buf + got);
      d.peer = peer_of(src);
      ++frames_received_;
      out->push_back(std::move(d));
    }
  }

  void close() override {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

 private:
  std::size_t peer_of(const sockaddr_in& src) const {
    const std::uint16_t port = ntohs(src.sin_port);
    for (std::size_t i = 0; i < peers_.size(); ++i)
      if (ntohs(peers_[i].sin_port) == port) return i;
    return kUnknownPeer;
  }

  int fd_ = -1;
  std::uint16_t port_ = 0;
  std::vector<sockaddr_in> peers_;
};

// ---- TCP mesh --------------------------------------------------------------

// One listen socket per node; broadcast writes the frame down a lazily
// connected outbound stream per peer.  Inbound streams are accepted and
// read with u32 length-prefix framing; they carry no peer identity
// (kUnknownPeer) — the mesh is anonymous in the receive direction just
// like UDP with address spoofing would be.
class TcpMeshTransport final : public Transport {
 public:
  ~TcpMeshTransport() override { close(); }

  bool open() override {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
      error_ = errno_message("socket(tcp)");
      return false;
    }
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr = loopback_addr(0);
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      error_ = errno_message("bind(tcp)");
      close();
      return false;
    }
    if (::listen(listen_fd_, 64) != 0) {
      error_ = errno_message("listen(tcp)");
      close();
      return false;
    }
    if (!set_nonblocking(listen_fd_)) {
      error_ = errno_message("fcntl(tcp)");
      close();
      return false;
    }
    port_ = bound_port(listen_fd_);
    return port_ != 0;
  }

  std::uint16_t port() const override { return port_; }

  void connect_peers(const std::vector<SvcEndpoint>& peers) override {
    peers_ = peers;
    out_fds_.assign(peers.size(), -1);
  }

  void broadcast(const Bytes& frame) override {
    for (std::size_t i = 0; i < peers_.size(); ++i) send_to(i, frame);
  }

  void send_to(std::size_t peer, const Bytes& frame) override {
    if (peer >= peers_.size()) return;
    int& fd = out_fds_[peer];
    if (fd < 0) fd = dial(peers_[peer].port);
    if (fd < 0) return;  // peer not up yet — a lost frame, retried next round
    ByteWriter w;
    w.u32(static_cast<std::uint32_t>(frame.size()));
    Bytes framed = w.take();
    framed.insert(framed.end(), frame.begin(), frame.end());
    // Frames are far below the socket buffer; a partial/failed write means
    // the peer died — drop the stream and let the next round redial.
    const ssize_t rc = ::send(fd, framed.data(), framed.size(), MSG_NOSIGNAL);
    if (rc != static_cast<ssize_t>(framed.size())) {
      ::close(fd);
      fd = -1;
      return;
    }
    ++frames_sent_;
    bytes_sent_ += frame.size();
  }

  std::size_t append_pollfds(std::vector<struct pollfd>* fds) override {
    std::size_t added = 0;
    if (listen_fd_ >= 0) {
      fds->push_back(pollfd{listen_fd_, POLLIN, 0});
      ++added;
    }
    for (const Conn& c : conns_) {
      fds->push_back(pollfd{c.fd, POLLIN, 0});
      ++added;
    }
    return added;
  }

  void drain(const struct pollfd* fds, std::size_t count,
             std::vector<Datagram>* out) override {
    std::size_t idx = 0;
    if (listen_fd_ >= 0 && idx < count) {
      if (fds[idx].revents & POLLIN) accept_all();
      ++idx;
    }
    // conns_ may have grown in accept_all(); only the polled prefix has
    // revents.  Dead connections are compacted afterwards.
    for (std::size_t c = 0; c < conns_.size() && idx < count; ++c, ++idx)
      if (fds[idx].revents & (POLLIN | POLLHUP | POLLERR))
        read_conn(conns_[c], out);
    conns_.erase(std::remove_if(conns_.begin(), conns_.end(),
                                [](const Conn& c) { return c.fd < 0; }),
                 conns_.end());
  }

  void close() override {
    if (listen_fd_ >= 0) ::close(listen_fd_);
    listen_fd_ = -1;
    for (Conn& c : conns_)
      if (c.fd >= 0) ::close(c.fd);
    conns_.clear();
    for (int& fd : out_fds_)
      if (fd >= 0) ::close(fd), fd = -1;
  }

 private:
  struct Conn {
    int fd = -1;
    Bytes buf;  // partially read framed stream
  };

  int dial(std::uint16_t port) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return -1;
    sockaddr_in addr = loopback_addr(port);
    // Blocking connect on loopback completes immediately when the peer's
    // listen queue exists; ECONNREFUSED just means "not up yet".
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      ::close(fd);
      return -1;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return fd;
  }

  void accept_all() {
    for (;;) {
      const int fd = ::accept(listen_fd_, nullptr, nullptr);
      if (fd < 0) return;
      if (!set_nonblocking(fd)) {
        ::close(fd);
        continue;
      }
      conns_.push_back(Conn{fd, {}});
    }
  }

  void read_conn(Conn& c, std::vector<Datagram>* out) {
    std::uint8_t buf[65536];
    for (;;) {
      const ssize_t got = ::recv(c.fd, buf, sizeof(buf), 0);
      if (got < 0) break;  // EAGAIN: drained for now
      if (got == 0) {      // orderly shutdown
        ::close(c.fd);
        c.fd = -1;
        break;
      }
      c.buf.insert(c.buf.end(), buf, buf + got);
    }
    // Extract complete frames.
    std::size_t pos = 0;
    while (c.buf.size() - pos >= 4) {
      std::uint32_t len = 0;
      for (int i = 0; i < 4; ++i)
        len |= static_cast<std::uint32_t>(c.buf[pos + i]) << (8 * i);
      if (len > kMaxFrameBytes) {  // corrupt stream: drop the connection
        if (c.fd >= 0) ::close(c.fd);
        c.fd = -1;
        c.buf.clear();
        return;
      }
      if (c.buf.size() - pos - 4 < len) break;
      Datagram d;
      d.payload.assign(c.buf.begin() + pos + 4, c.buf.begin() + pos + 4 + len);
      d.peer = kUnknownPeer;
      ++frames_received_;
      out->push_back(std::move(d));
      pos += 4 + len;
    }
    if (pos > 0) c.buf.erase(c.buf.begin(), c.buf.begin() + pos);
  }

  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::vector<SvcEndpoint> peers_;
  std::vector<int> out_fds_;
  std::vector<Conn> conns_;
};

std::unique_ptr<Transport> make_transport(SvcSocketKind kind) {
  if (kind == SvcSocketKind::kTcp)
    return std::make_unique<TcpMeshTransport>();
  return std::make_unique<UdpTransport>();
}

}  // namespace anon
