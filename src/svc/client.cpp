#include "svc/client.hpp"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <ctime>

namespace anon {

namespace {

constexpr std::size_t kMaxResponseBytes = 1u << 20;

using Clock = std::chrono::steady_clock;

std::chrono::milliseconds remaining(Clock::time_point deadline) {
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline - Clock::now());
  return left.count() < 0 ? std::chrono::milliseconds(0) : left;
}

}  // namespace

bool SvcClient::connect(std::uint16_t port, std::chrono::milliseconds timeout) {
  close();
  const auto deadline = Clock::now() + timeout;
  // The node may still be binding its listener; retry until the deadline.
  for (;;) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) {
      error_ = std::string("socket: ") + std::strerror(errno);
      return false;
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
      const int one = 1;
      ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return true;
    }
    ::close(fd_);
    fd_ = -1;
    if (remaining(deadline).count() == 0) {
      error_ = std::string("connect: ") + std::strerror(errno);
      return false;
    }
    struct timespec nap {0, 2'000'000};  // 2ms
    nanosleep(&nap, nullptr);
  }
}

void SvcClient::close() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
  buf_.clear();
}

SvcClient::Result SvcClient::status(std::chrono::milliseconds timeout) {
  return call(SvcOp::kStatus, false, 0, timeout);
}

SvcClient::Result SvcClient::decision(std::chrono::milliseconds timeout) {
  return call(SvcOp::kDecision, false, 0, timeout);
}

SvcClient::Result SvcClient::ws_add(std::int64_t value,
                                    std::chrono::milliseconds timeout) {
  return call(SvcOp::kWsAdd, true, value, timeout);
}

SvcClient::Result SvcClient::ws_get(std::chrono::milliseconds timeout) {
  return call(SvcOp::kWsGet, false, 0, timeout);
}

SvcClient::Result SvcClient::reg_read(std::chrono::milliseconds timeout) {
  return call(SvcOp::kRegRead, false, 0, timeout);
}

SvcClient::Result SvcClient::reg_write(std::int64_t value,
                                       std::chrono::milliseconds timeout) {
  return call(SvcOp::kRegWrite, true, value, timeout);
}

SvcClient::Result SvcClient::call(SvcOp op, bool has_value, std::int64_t value,
                                  std::chrono::milliseconds timeout) {
  Result result;
  if (fd_ < 0) {
    error_ = "not connected";
    return result;
  }
  const auto deadline = Clock::now() + timeout;

  ClientRequest req;
  req.op = op;
  req.request_id = next_id_++;
  req.has_value = has_value;
  req.value = value;
  const Bytes body = encode_client_request(req);
  ByteWriter w;
  w.u32(static_cast<std::uint32_t>(body.size()));
  Bytes framed = w.take();
  framed.insert(framed.end(), body.begin(), body.end());
  if (::send(fd_, framed.data(), framed.size(), MSG_NOSIGNAL) !=
      static_cast<ssize_t>(framed.size())) {
    error_ = std::string("send: ") + std::strerror(errno);
    close();
    return result;
  }

  // Read frames until the response matching our request id arrives (the
  // stream is ordered, but a node may interleave failure responses).
  for (;;) {
    // Extract any complete frame already buffered.
    while (buf_.size() >= 4) {
      std::uint32_t len = 0;
      for (int i = 0; i < 4; ++i)
        len |= static_cast<std::uint32_t>(buf_[i]) << (8 * i);
      if (len > kMaxResponseBytes) {
        error_ = "corrupt response stream";
        close();
        return result;
      }
      if (buf_.size() - 4 < len) break;
      Bytes frame(buf_.begin() + 4, buf_.begin() + 4 + len);
      buf_.erase(buf_.begin(), buf_.begin() + 4 + len);
      auto resp = decode_client_response(frame);
      if (!resp) {
        error_ = "undecodable response";
        close();
        return result;
      }
      if (resp->request_id != req.request_id && resp->request_id != 0) continue;
      result.transport_ok = true;
      result.status = resp->status;
      result.info = resp->info;
      result.values = std::move(resp->values);
      return result;
    }

    const auto left = remaining(deadline);
    if (left.count() == 0) {
      result.status = SvcStatus::kTimeout;
      error_ = "deadline expired";
      return result;
    }
    struct pollfd p {fd_, POLLIN, 0};
    const int rc = ::poll(&p, 1, static_cast<int>(left.count()));
    if (rc < 0 && errno == EINTR) continue;
    if (rc <= 0) {
      result.status = SvcStatus::kTimeout;
      error_ = "deadline expired";
      return result;
    }
    std::uint8_t tmp[4096];
    const ssize_t got = ::recv(fd_, tmp, sizeof(tmp), 0);
    if (got <= 0) {
      error_ = "connection closed by node";
      close();
      return result;
    }
    buf_.insert(buf_.end(), tmp, tmp + got);
  }
}

}  // namespace anon
