// SvcClient: the blocking client API of the anonsvc service.
//
// One TCP connection to one node's client port; requests and responses are
// u32-length-framed ClientRequest/ClientResponse records (frame.hpp).
// Every call takes a deadline: kTimeout with transport_ok=false means the
// socket-level wait expired (distinct from a node-reported kTimeout, e.g.
// the decision watchdog, which arrives with transport_ok=true).
#pragma once

#include <chrono>
#include <string>
#include <vector>

#include "svc/frame.hpp"

namespace anon {

class SvcClient {
 public:
  SvcClient() = default;
  ~SvcClient() { close(); }

  SvcClient(const SvcClient&) = delete;
  SvcClient& operator=(const SvcClient&) = delete;

  bool connect(std::uint16_t port,
               std::chrono::milliseconds timeout = std::chrono::seconds(2));
  bool connected() const { return fd_ >= 0; }
  void close();
  const std::string& error() const { return error_; }

  struct Result {
    bool transport_ok = false;  // false ⇒ socket error / client-side timeout
    SvcStatus status = SvcStatus::kError;
    std::uint64_t info = 0;
    std::vector<Value> values;
    bool ok() const { return transport_ok && status == SvcStatus::kOk; }
  };

  // info = the node's current round; values = {decision} when decided.
  Result status(std::chrono::milliseconds timeout);
  // Blocks server-side until the node decides (or its watchdog fires).
  Result decision(std::chrono::milliseconds timeout);
  // Blocks server-side until the value reaches WRITTEN (Algorithm 4).
  Result ws_add(std::int64_t value, std::chrono::milliseconds timeout);
  Result ws_get(std::chrono::milliseconds timeout);
  // ABD register: read returns values = {v} (empty before any write).
  Result reg_read(std::chrono::milliseconds timeout);
  Result reg_write(std::int64_t value, std::chrono::milliseconds timeout);

 private:
  Result call(SvcOp op, bool has_value, std::int64_t value,
              std::chrono::milliseconds timeout);

  int fd_ = -1;
  std::uint64_t next_id_ = 1;
  Bytes buf_;  // partially read response stream
  std::string error_;
};

}  // namespace anon
