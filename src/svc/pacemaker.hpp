// The anonsvc pacemaker: paces GIRAF rounds on wall-clock deadlines and
// watches the link layer for GST-style stabilization — the realtime
// analogue of the ES/ESS environment definitions.
//
// Round k closes at a deadline; frames for the current round that arrive
// before it count toward timeliness.  A round during which every expected
// peer (or, on transports that cannot attribute senders, at least n
// frames) arrived on time is *timely*; after `stabilize_after` consecutive
// timely rounds the pacemaker declares the run stabilized — the moment a
// deployment would treat as "GST has passed" (rounds behave like the
// post-stabilization suffix of an ES environment).
//
// Cadence: while the link layer shows any life the pacemaker holds a fixed
// period — equal periods re-align misaligned round numbers by themselves,
// and stretching would desynchronize them for good.  Only a *silent* round
// (no frames at all: peers dead or stalled) stretches the next deadline by
// a randomized timeout drawn from [min_timeout, max_timeout] — the
// ArangoDB-Constituent idiom: randomization de-synchronizes recovery so
// reconnecting peers do not stampede in lockstep.  The draw is a pure
// hash_mix(seed, round) function, so a seeded run re-draws the same
// timeouts.
#pragma once

#include <chrono>
#include <cstdint>
#include <vector>

#include "giraf/types.hpp"

namespace anon {

struct PacemakerOptions {
  std::chrono::milliseconds period{4};       // timely-round cadence
  std::chrono::milliseconds min_timeout{6};  // randomized stretch after a
  std::chrono::milliseconds max_timeout{20}; // silent round / dead source
  std::uint64_t seed = 1;
  std::size_t peers = 0;           // frames expected per round (n, incl. self)
  Round stabilize_after = 5;       // consecutive timely rounds ⇒ stabilized
  // Source gating (transports that attribute senders, i.e. UDP): round k
  // may not close before the rotating source's (k mod peers) round-k frame
  // has arrived — the live construction of the environments' round-source
  // property, and what makes decisions trustworthy under loss: every
  // compute sees the source's batch.  `self` identifies our own index
  // (self-source rounds close on the deadline alone; our own frame only
  // exists after the close).  A randomized hard timeout bounds the wait
  // when the source is dead.
  bool gate_on_source = false;
  std::size_t self = static_cast<std::size_t>(-1);
};

class RoundPacemaker {
 public:
  using Clock = std::chrono::steady_clock;

  RoundPacemaker(PacemakerOptions opt, Clock::time_point start);

  Round round() const { return round_; }
  Clock::time_point deadline() const { return deadline_; }

  // True once the round may close at `now`: the deadline passed and — with
  // source gating — the round's source batch arrived (or the hard timeout
  // expired, or we are the source ourselves).
  bool can_close(Clock::time_point now) const;
  // The give-up point of a gated wait (deadline + randomized stretch).
  Clock::time_point hard_deadline() const;

  // A round-k frame arrived (peer may be Transport::kUnknownPeer).
  void note_frame(std::size_t peer, Round frame_round, Clock::time_point now);

  // Closes the current round at `now` and schedules the next deadline.
  // Returns whether the closing round was timely.
  bool close_round(Clock::time_point now);

  bool stabilized() const { return stabilized_at_ != 0; }
  Round stabilized_at() const { return stabilized_at_; }
  Round timely_streak() const { return streak_; }
  Round timely_rounds() const { return timely_total_; }

  // Per-link diagnostics: the last round a frame attributed to `peer`
  // arrived in time (0 = never heard).
  Round last_heard(std::size_t peer) const;

 private:
  std::chrono::milliseconds draw_timeout(Round k) const;

  PacemakerOptions opt_;
  Round round_ = 1;
  Clock::time_point deadline_;
  std::vector<bool> heard_;        // this round, per attributed peer
  std::vector<Round> last_heard_;  // per peer
  std::size_t heard_count_ = 0;    // distinct attributed peers this round
  std::size_t frames_this_round_ = 0;  // in-window, incl. unattributed
  std::size_t frames_any_ = 0;         // any tag: link-layer liveness
  Round max_tag_ = 0;                  // highest tag seen this window
  Round src_tag_ = 0;  // highest tag t whose source (t mod peers) was heard
  Clock::time_point window_start_;
  Round streak_ = 0;
  Round timely_total_ = 0;
  Round stabilized_at_ = 0;
};

}  // namespace anon
