#include "svc/pacemaker.hpp"

#include "common/check.hpp"
#include "net/schedule.hpp"

namespace anon {

RoundPacemaker::RoundPacemaker(PacemakerOptions opt, Clock::time_point start)
    : opt_(opt) {
  ANON_CHECK(opt_.period.count() >= 1);
  ANON_CHECK(opt_.min_timeout <= opt_.max_timeout);
  heard_.assign(opt_.peers, false);
  last_heard_.assign(opt_.peers, 0);
  window_start_ = start;
  deadline_ = start + opt_.period;
}

void RoundPacemaker::note_frame(std::size_t peer, Round frame_round,
                                Clock::time_point now) {
  (void)now;  // timeliness = arrived while the round was open (GIRAF's
              // "before end-of-round"), and note_frame only fires then
  // Always track the highest tag seen — it tells close_round whether the
  // mesh has moved ahead of us (a recovered node sprints to rejoin).
  if (frame_round > max_tag_) max_tag_ = frame_round;
  // Source gating: record the highest tag t whose frame came from the
  // round-t source (t mod peers).  Cumulative, never reset — a source
  // frame for a round we already left still proves the rotation is alive.
  if (opt_.peers > 0 && peer < opt_.peers &&
      peer == frame_round % opt_.peers && frame_round > src_tag_)
    src_tag_ = frame_round;
  ++frames_any_;  // liveness: peers are talking, whatever round they're in
  // A round-k batch is broadcast the instant its sender closes round k and
  // advances, so at a same-paced receiver it lands with frame_round ==
  // round_ - 1; frame_round == round_ is a laggard receiver (sender's
  // deadline fired first).  Anything else is late/early — not timely.
  if (frame_round + 1 != round_ && frame_round != round_) return;
  ++frames_this_round_;
  if (peer < heard_.size()) {
    if (!heard_[peer]) {
      heard_[peer] = true;
      ++heard_count_;
    }
    last_heard_[peer] = round_;
  }
}

bool RoundPacemaker::can_close(Clock::time_point now) const {
  if (now < deadline_) return false;
  if (!opt_.gate_on_source || opt_.peers <= 1) return true;
  // We are this round's source: our own frame only exists once we close.
  if (round_ % opt_.peers == opt_.self) return true;
  // The round source's batch arrived — the view is complete where it
  // matters, close and compute.
  if (src_tag_ >= round_) return true;
  // Source dead or stalled: give up after the randomized stretch so a dead
  // rotation slot costs one timeout, not the run.
  return now >= hard_deadline();
}

RoundPacemaker::Clock::time_point RoundPacemaker::hard_deadline() const {
  return deadline_ + draw_timeout(round_);
}

bool RoundPacemaker::close_round(Clock::time_point now) {
  // Timely = every expected peer was heard in this window or the previous
  // one.  The one-round hysteresis absorbs deadline-boundary races: a peer
  // whose phase sits right at our deadline alternates between landing just
  // before and just after it, which would otherwise leave every other
  // window without that peer's frame.  Transports that cannot attribute
  // senders (TCP inbound) still count frames, so n on-time frames also
  // qualify.
  std::size_t fresh = 0;
  for (const Round lh : last_heard_)
    if (lh > 0 && lh + 1 >= round_) ++fresh;
  const bool timely = opt_.peers == 0 || fresh >= opt_.peers ||
                      frames_this_round_ >= opt_.peers;
  if (timely) {
    ++streak_;
    ++timely_total_;
    if (stabilized_at_ == 0 && streak_ >= opt_.stabilize_after)
      stabilized_at_ = round_;
  } else {
    streak_ = 0;
  }
  // Cadence.  The default is an *absolute* drift-free schedule (deadline
  // += period): `now + period` would compound each node's per-round lag
  // into a random walk that slowly tears round numbers apart, while an
  // absolute schedule pins every node to start + k·period, so equal
  // periods keep tags inside the ±1 window forever.  Two exceptions:
  //
  //  * behind — frames carry tags ahead of our round: the mesh moved on
  //    without us (we stalled or backed off).  Sprint: close rounds
  //    back-to-back until the round number catches up, then resume cadence
  //    from the new phase.
  //  * silent — a full-length window with no frames at all (peers dead or
  //    stalled; sprint/catch-up windows are compressed and do not count).
  //    Back off by a randomized timeout so recovering peers do not
  //    stampede in lockstep.
  const bool full_window = now - window_start_ >= opt_.period;
  const bool silent = opt_.peers > 1 && frames_any_ == 0 && full_window;
  const bool behind = max_tag_ > round_;
  ++round_;
  heard_.assign(heard_.size(), false);
  heard_count_ = 0;
  frames_this_round_ = 0;
  frames_any_ = 0;
  max_tag_ = 0;
  window_start_ = now;
  if (behind)
    deadline_ = now;
  else if (silent)
    deadline_ = now + draw_timeout(round_);
  else
    deadline_ += opt_.period;
  // A hard stall (OS paused us for many periods) would otherwise trigger a
  // long catch-up burst; re-base and let the behind-sprint fix the round
  // number instead.
  if (deadline_ + 4 * opt_.period < now) deadline_ = now;
  return timely;
}

Round RoundPacemaker::last_heard(std::size_t peer) const {
  return peer < last_heard_.size() ? last_heard_[peer] : 0;
}

std::chrono::milliseconds RoundPacemaker::draw_timeout(Round k) const {
  const std::uint64_t span = static_cast<std::uint64_t>(
      (opt_.max_timeout - opt_.min_timeout).count());
  const std::uint64_t h = hash_mix(opt_.seed, k, 0x70ACEu, 0);
  return opt_.min_timeout + std::chrono::milliseconds(
                                static_cast<std::int64_t>(hash_below(h, span + 1)));
}

}  // namespace anon
