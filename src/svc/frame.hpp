// The anonsvc wire surface: a small versioned service frame around the
// runtime/codec message formats, plus the client request/response codec
// and the ABD quorum messages.
//
// Peer frame (node ↔ node, anonymous — no sender identity on the wire):
//   u8 magic(0xA7) | u8 version(1) | u8 kind | u64 epoch | u64 round |
//   u32 len | payload[len]
// `epoch` fences cross-cluster traffic (a stray datagram from an older
// cluster on a recycled port decodes fine but is discarded by epoch);
// `round` is the GIRAF round for round-kind frames and unused otherwise.
//
// Round payloads carry a whole GIRAF batch in the realtime.hpp body shape:
//   u32 batch_count | { u32 len | encode_es_message bytes }*
// Both the ES consensus automaton and Algorithm 4's weak-set automaton
// exchange `ValueSet`s, so one batch codec serves both frame kinds.
//
// ABD payloads are deliberately ID-bearing (origin/replica indices): ABD
// is the paper's known-network baseline, and its quorum phases need
// addressable replicas.  Anonymity is a property of the consensus and
// weak-set frames, not of the baseline.
//
// Every decoder is defensive: malformed, truncated, bit-flipped or
// oversized buffers yield nullopt, never UB (tests/codec_harden_test.cpp).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/value.hpp"
#include "giraf/types.hpp"
#include "runtime/codec.hpp"

namespace anon {

inline constexpr std::uint8_t kSvcMagic = 0xA7;
inline constexpr std::uint8_t kSvcWireVersion = 1;

enum class SvcFrameKind : std::uint8_t {
  kConsensusRound = 1,
  kWeaksetRound = 2,
  kAbd = 3,
  kHeartbeat = 4,
};

struct ServiceFrame {
  std::uint8_t version = kSvcWireVersion;
  SvcFrameKind kind = SvcFrameKind::kHeartbeat;
  std::uint64_t epoch = 0;
  std::uint64_t round = 0;
  Bytes payload;

  friend bool operator==(const ServiceFrame&, const ServiceFrame&) = default;
};

Bytes encode_service_frame(const ServiceFrame& f);
std::optional<ServiceFrame> decode_service_frame(const Bytes& in);

// A GIRAF round batch (the payload of kConsensusRound / kWeaksetRound).
Bytes encode_valueset_batch(const std::vector<ValueSet>& batch);
std::optional<std::vector<ValueSet>> decode_valueset_batch(const Bytes& in);

// ---- ABD quorum messages ---------------------------------------------------

enum class AbdWireType : std::uint8_t {
  kQuery = 1,      // coordinator → replicas: send me your (tag, value)
  kQueryResp = 2,  // replica → coordinator
  kStore = 3,      // coordinator → replicas: adopt (tag, value) if newer
  kStoreAck = 4,   // replica → coordinator
};

struct AbdWire {
  AbdWireType type = AbdWireType::kQuery;
  std::uint64_t op_id = 0;   // coordinator-local operation id
  std::uint32_t origin = 0;  // coordinator node index (reply address)
  std::uint32_t replica = 0; // responder node index (quorum dedup)
  std::uint64_t ts = 0;      // tag timestamp
  std::uint32_t wid = 0;     // tag writer id
  bool has_value = false;
  std::int64_t value = 0;

  friend bool operator==(const AbdWire&, const AbdWire&) = default;
};

Bytes encode_abd_wire(const AbdWire& m);
std::optional<AbdWire> decode_abd_wire(const Bytes& in);

// ---- Client request / response ---------------------------------------------

enum class SvcOp : std::uint8_t {
  kStatus = 1,    // node round / decision / stabilization probe
  kDecision = 2,  // block until the consensus instance decided
  kWsAdd = 3,     // weak-set add(v): blocks until v ∈ WRITTEN
  kWsGet = 4,     // weak-set get(): returns PROPOSED immediately
  kRegRead = 5,   // ABD register read
  kRegWrite = 6,  // ABD register write(v)
};

struct ClientRequest {
  std::uint8_t version = kSvcWireVersion;
  SvcOp op = SvcOp::kStatus;
  std::uint64_t request_id = 0;
  bool has_value = false;
  std::int64_t value = 0;  // kWsAdd / kRegWrite operand

  friend bool operator==(const ClientRequest&, const ClientRequest&) = default;
};

enum class SvcStatus : std::uint8_t {
  kOk = 0,
  kTimeout = 1,  // watchdog/deadline fired before the operation completed
  kError = 2,    // malformed request or unsupported op
};

struct ClientResponse {
  std::uint8_t version = kSvcWireVersion;
  SvcStatus status = SvcStatus::kOk;
  std::uint64_t request_id = 0;
  std::uint64_t info = 0;  // op-dependent (status: current round)
  std::vector<Value> values;  // decision / get / read results

  friend bool operator==(const ClientResponse&, const ClientResponse&) = default;
};

Bytes encode_client_request(const ClientRequest& r);
std::optional<ClientRequest> decode_client_request(const Bytes& in);

Bytes encode_client_response(const ClientResponse& r);
std::optional<ClientResponse> decode_client_response(const Bytes& in);

}  // namespace anon
