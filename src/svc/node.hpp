// The anonsvc logic layer: one anonymous node of a live cluster.
//
// A LiveNode hosts the paper's three objects behind one poll() event loop
// (transport frames + client connections, no thread per object):
//
//   * an ES consensus instance (Algorithm 2) — a GirafProcess whose rounds
//     are paced by the RoundPacemaker and whose batches ride
//     kConsensusRound service frames;
//   * Algorithm 4's weak set — a second GirafProcess sharing the same
//     round cadence (both automatons exchange ValueSets, so both reuse
//     the ES wire codec).  Blocking adds complete when the automaton
//     unblocks (v ∈ WRITTEN) AND a full round certified global visibility
//     (every peer's frame arrived carrying the value) — the stronger
//     completion makes live histories pass the sort-and-sweep checker;
//   * an ABD register replica + coordinator (quorum phases over kAbd
//     frames, retransmitted every round until a majority answers — the
//     ID-based baseline, see frame.hpp).
//
// Ingress faults: every peer frame passes the runtime bus's JitterPolicy
// (same hash-fate coin as the simulator's FaultPlan loss knob); dropped
// frames count as fault_drops, delayed ones sit in a due-queue.  ES
// safety is unconditional, so agreement/validity survive any loss rate —
// only termination needs the pacemaker to find stabilization.
//
// Degradation: a `watchdog_rounds` deadline turns blocked decision waits
// into kTimeout responses (the live face of the sim watchdog's
// `undecided` outcome); `crash_at` silences the node mid-run for fault
// drills.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "algo/es_consensus.hpp"
#include "giraf/process.hpp"
#include "runtime/bus.hpp"
#include "svc/frame.hpp"
#include "svc/pacemaker.hpp"
#include "svc/transport.hpp"
#include "weakset/ms_weak_set.hpp"

namespace anon {

struct LiveNodeOptions {
  std::size_t index = 0;
  std::size_t n = 1;
  std::uint64_t epoch = 1;
  std::uint64_t seed = 1;
  SvcSocketKind socket = SvcSocketKind::kUdp;
  std::chrono::milliseconds period{4};
  std::chrono::milliseconds max_jitter{0};  // ingress JitterPolicy
  double loss = 0.0;                        // ingress JitterPolicy
  Round max_rounds = 100000;
  Round watchdog_rounds = 0;  // 0 = off
  Round stabilize_after = 5;
  Round crash_at = kNeverCrashes;
  Value proposal = Value(0);  // consensus initial value
};

class LiveNode {
 public:
  explicit LiveNode(LiveNodeOptions opt);
  ~LiveNode();

  LiveNode(const LiveNode&) = delete;
  LiveNode& operator=(const LiveNode&) = delete;

  // Binds the data transport and the client listen socket.
  bool open();
  const std::string& error() const { return error_; }

  std::uint16_t data_port() const;
  std::uint16_t client_port() const { return client_port_; }

  void connect_peers(const std::vector<SvcEndpoint>& peers);

  // The node's event loop; blocks until stop() or max_rounds.  Run on a
  // dedicated thread (LiveCluster) or as a whole process (anonsvc serve).
  void run();
  void stop() { stop_.store(true, std::memory_order_release); }

  // Post-run observations (safe after run() returned).
  std::optional<Value> decision() const { return decision_; }
  Round decision_round() const { return decision_round_; }
  Round rounds_executed() const { return rounds_executed_; }
  bool stabilized() const { return stabilized_; }
  Round stabilized_at() const { return stabilized_at_; }
  std::uint64_t frames_sent() const { return frames_sent_; }
  std::uint64_t frames_received() const { return frames_received_; }
  std::uint64_t bytes_sent() const { return bytes_sent_; }
  std::uint64_t fault_drops() const { return fault_drops_; }
  std::uint64_t client_ops() const { return client_ops_; }

 private:
  struct ClientConn {
    int fd = -1;
    Bytes buf;
  };

  struct AbdTag {
    std::uint64_t ts = 0;
    std::uint32_t wid = 0;
    friend auto operator<=>(const AbdTag&, const AbdTag&) = default;
  };

  struct AbdOp {
    bool is_write = false;
    std::int64_t write_value = 0;
    std::uint64_t op_id = 0;
    std::size_t conn = 0;
    std::uint64_t request_id = 0;
    bool store_phase = false;
    std::vector<bool> heard;  // per-replica, current phase
    std::size_t heard_count = 0;
    AbdTag best;
    bool best_has_value = false;
    std::int64_t best_value = 0;
  };

  struct PendingWait {
    std::size_t conn = 0;
    std::uint64_t request_id = 0;
  };

  struct WsAdd {
    std::size_t conn = 0;
    std::uint64_t request_id = 0;
    Value value;
  };

  struct DueFrame {
    std::chrono::steady_clock::time_point due;
    ServiceFrame frame;
    std::size_t peer;
  };

  bool open_client_listener();
  void event_loop();
  void do_round(std::chrono::steady_clock::time_point now);
  void ingress(Transport::Datagram&& d,
               std::chrono::steady_clock::time_point now);
  void deliver(const ServiceFrame& f, std::size_t peer,
               std::chrono::steady_clock::time_point now);
  void handle_abd(const AbdWire& m);
  void abd_tick();
  void abd_start_phase(AbdOp& op, bool store);
  Bytes abd_frame(const AbdWire& m) const;
  void abd_finish(AbdOp& op);
  void accept_clients();
  void read_client(std::size_t conn_idx);
  void handle_request(std::size_t conn_idx, const ClientRequest& req);
  void respond(std::size_t conn_idx, const ClientResponse& resp);
  void service_waiters();
  void fail_all_pending(SvcStatus status);
  std::size_t majority() const { return opt_.n / 2 + 1; }

  LiveNodeOptions opt_;
  std::unique_ptr<Transport> transport_;
  JitterPolicy jitter_;
  int listen_fd_ = -1;
  std::uint16_t client_port_ = 0;
  std::string error_;
  std::atomic<bool> stop_{false};

  // Protocol state (event-loop thread only).
  GirafProcess<EsMessage> consensus_;
  GirafProcess<ValueSet> weakset_;
  MsWeakSetAutomaton* ws_automaton_ = nullptr;  // owned by weakset_
  std::unique_ptr<RoundPacemaker> pacemaker_;
  std::vector<DueFrame> due_;  // jitter-delayed frames

  AbdTag abd_tag_;
  bool abd_has_value_ = false;
  std::int64_t abd_value_ = 0;
  std::vector<AbdOp> abd_ops_;
  std::uint64_t abd_next_op_ = 0;

  std::vector<ClientConn> conns_;
  std::vector<PendingWait> decision_waiters_;
  std::deque<WsAdd> ws_adds_;  // front = in flight iff ws_add_active_
  bool ws_add_active_ = false;
  // Visibility certificate for the in-flight add: set at a round whose
  // view was full (every peer's weak-set frame arrived) with the value in
  // every message — at that point every node's proposed set provably holds
  // it (see do_round), so later gets anywhere return it.
  bool ws_add_confirmed_ = false;
  // Per-tag weak-set frame counts for the full-view test (pruned to the
  // current inbox window; each peer sends exactly one frame per tag).
  std::vector<std::pair<Round, std::size_t>> ws_tag_counts_;

  // Observations.
  std::optional<Value> decision_;
  Round decision_round_ = 0;
  Round rounds_executed_ = 0;
  bool stabilized_ = false;
  Round stabilized_at_ = 0;
  std::uint64_t frames_sent_ = 0;
  std::uint64_t frames_received_ = 0;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t fault_drops_ = 0;
  std::uint64_t client_ops_ = 0;
};

}  // namespace anon
