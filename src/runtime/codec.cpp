#include "runtime/codec.hpp"

namespace anon {

namespace {
constexpr std::uint8_t kTagEs = 'E';
constexpr std::uint8_t kTagEss = 'S';
constexpr std::uint32_t kMaxCount = 1u << 24;  // sanity bound for decoding

void put_value(ByteWriter& w, const Value& v) {
  if (v.is_bottom()) {
    w.u8(0);
  } else {
    w.u8(1);
    w.i64(v.get());
  }
}

std::optional<Value> get_value(ByteReader& r) {
  auto kind = r.u8();
  if (!kind) return std::nullopt;
  if (*kind == 0) return Value::Bottom();
  if (*kind != 1) return std::nullopt;
  auto payload = r.i64();
  if (!payload) return std::nullopt;
  return Value(*payload);
}

void put_value_set(ByteWriter& w, const ValueSet& s) {
  w.u32(static_cast<std::uint32_t>(s.size()));
  for (const Value& v : s) put_value(w, v);
}

std::optional<ValueSet> get_value_set(ByteReader& r) {
  auto n = r.u32();
  if (!n || *n > kMaxCount) return std::nullopt;
  ValueSet out;
  for (std::uint32_t i = 0; i < *n; ++i) {
    auto v = get_value(r);
    if (!v) return std::nullopt;
    out.insert(*v);
  }
  return out;
}

void put_history(ByteWriter& w, const History& h) {
  const auto vals = h.values();
  w.u32(static_cast<std::uint32_t>(vals.size()));
  for (const Value& v : vals) put_value(w, v);
}

std::optional<History> get_history(ByteReader& r, HistoryArena* arena) {
  auto n = r.u32();
  if (!n || *n > kMaxCount) return std::nullopt;
  History h;
  for (std::uint32_t i = 0; i < *n; ++i) {
    auto v = get_value(r);
    if (!v) return std::nullopt;
    h = arena->append(h, *v);
  }
  return h;
}
}  // namespace

void ByteWriter::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}
void ByteWriter::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::optional<std::uint8_t> ByteReader::u8() {
  if (pos_ >= in_.size()) return std::nullopt;
  return in_[pos_++];
}
std::optional<std::uint32_t> ByteReader::u32() {
  if (pos_ + 4 > in_.size()) return std::nullopt;
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(in_[pos_++]) << (8 * i);
  return v;
}
std::optional<std::uint64_t> ByteReader::u64() {
  if (pos_ + 8 > in_.size()) return std::nullopt;
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(in_[pos_++]) << (8 * i);
  return v;
}
std::optional<std::int64_t> ByteReader::i64() {
  auto v = u64();
  if (!v) return std::nullopt;
  return static_cast<std::int64_t>(*v);
}

Bytes encode_es_message(const EsMessage& m) {
  ByteWriter w;
  w.u8(kTagEs);
  put_value_set(w, m);
  return w.take();
}

std::optional<EsMessage> decode_es_message(const Bytes& in) {
  ByteReader r(in);
  auto tag = r.u8();
  if (!tag || *tag != kTagEs) return std::nullopt;
  auto s = get_value_set(r);
  if (!s || !r.exhausted()) return std::nullopt;
  return s;
}

Bytes encode_ess_message(const EssMessage& m) {
  ByteWriter w;
  w.u8(kTagEss);
  put_value_set(w, m.proposed);
  put_history(w, m.history);
  w.u32(static_cast<std::uint32_t>(m.counters.size()));
  for (const auto& [h, c] : m.counters.entries()) {
    put_history(w, h);
    w.u64(c);
  }
  return w.take();
}

std::optional<EssMessage> decode_ess_message(const Bytes& in,
                                             HistoryArena* arena) {
  ByteReader r(in);
  auto tag = r.u8();
  if (!tag || *tag != kTagEss) return std::nullopt;
  auto proposed = get_value_set(r);
  if (!proposed) return std::nullopt;
  auto history = get_history(r, arena);
  if (!history) return std::nullopt;
  auto n = r.u32();
  if (!n || *n > (1u << 24)) return std::nullopt;
  CounterMap counters;
  for (std::uint32_t i = 0; i < *n; ++i) {
    auto h = get_history(r, arena);
    if (!h) return std::nullopt;
    auto c = r.u64();
    if (!c) return std::nullopt;
    counters.set(*h, *c);
  }
  if (!r.exhausted()) return std::nullopt;
  return EssMessage{*proposed, *history, counters};
}

}  // namespace anon
