#include "runtime/realtime.hpp"

// RealtimeCluster is header-only (templated on message type and codec).

namespace anon {
static_assert(sizeof(RealtimeOptions) > 0);
}  // namespace anon
