// A wall-clock, multi-threaded runtime for the paper's algorithms — the
// deployment-shaped entry point.  Each anonymous process runs on its own
// thread, paces GIRAF rounds with a fixed period, and exchanges encoded
// messages over the BroadcastBus.
//
// Synchrony story: choosing a round period comfortably above the network's
// jitter bound realizes the ES environment in the classic way (timeouts ≈
// eventual synchrony); shrinking the period below the jitter turns links
// non-timely and the algorithms fall back to safety-only — which they
// keep unconditionally.
//
// Wire frame:  u64 round | u32 batch_count | { u32 len | message bytes }*
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "common/check.hpp"
#include "giraf/process.hpp"
#include "runtime/bus.hpp"

namespace anon {

struct RealtimeOptions {
  std::chrono::milliseconds round_period{5};
  Round max_rounds = 3000;
};

// Codec trait: how a message type crosses the wire.  `Arena` state is
// per-process (histories must be interned locally — arenas are not
// thread-safe and never shared across threads).
struct EsWireCodec {
  static Bytes encode(const EsMessage& m, HistoryArena*) {
    return encode_es_message(m);
  }
  static std::optional<EsMessage> decode(const Bytes& b, HistoryArena*) {
    return decode_es_message(b);
  }
};

struct EssWireCodec {
  static Bytes encode(const EssMessage& m, HistoryArena*) {
    return encode_ess_message(m);
  }
  static std::optional<EssMessage> decode(const Bytes& b, HistoryArena* arena) {
    return decode_ess_message(b, arena);
  }
};

template <GirafMessage M, typename Codec>
class RealtimeCluster {
 public:
  // `factories` build each process's automaton given its private arena.
  using AutomatonFactory =
      std::function<std::unique_ptr<Automaton<M>>(HistoryArena*)>;

  RealtimeCluster(std::vector<AutomatonFactory> factories, BroadcastBus* bus,
                  RealtimeOptions opt)
      : bus_(bus), opt_(opt), n_(factories.size()) {
    ANON_CHECK(bus_ != nullptr && n_ >= 1 && bus_->subscribers() == n_);
    arenas_.reserve(n_);
    procs_.reserve(n_);
    for (std::size_t i = 0; i < n_; ++i) {
      arenas_.push_back(std::make_unique<HistoryArena>());
      procs_.push_back(std::make_unique<GirafProcess<M>>(
          factories[i](arenas_.back().get())));
    }
    crash_at_.assign(n_, kNeverCrashes);
    decisions_.resize(n_);
  }

  // Schedule process p to stop (crash) before executing round `r`.
  void crash_before_round(std::size_t p, Round r) { crash_at_[p] = r; }

  // Runs all processes until every non-crashed one decided (plus a few
  // grace rounds of frozen re-broadcasts), or max_rounds.
  // Returns true if all running processes decided.
  bool run() {
    live_target_ = 0;
    for (std::size_t p = 0; p < n_; ++p)
      if (crash_at_[p] == kNeverCrashes) ++live_target_;
    const auto start = std::chrono::steady_clock::now();
    std::vector<std::thread> threads;
    threads.reserve(n_);
    for (std::size_t p = 0; p < n_; ++p)
      threads.emplace_back([this, p, start] { worker(p, start); });
    for (auto& t : threads) t.join();
    bool all = true;
    for (std::size_t p = 0; p < n_; ++p)
      if (crash_at_[p] == kNeverCrashes && !decisions_[p].has_value())
        all = false;
    return all;
  }

  // Valid after run() returned (worker threads own these slots meanwhile).
  std::optional<Value> decision(std::size_t p) const { return decisions_[p]; }
  Round rounds_executed(std::size_t p) const { return procs_[p]->round(); }

 private:
  void worker(std::size_t p, std::chrono::steady_clock::time_point start) {
    GirafProcess<M>& proc = *procs_[p];
    HistoryArena* arena = arenas_[p].get();
    bool noted = false;
    Round grace = 0;
    for (Round r = 1; r <= opt_.max_rounds; ++r) {
      if (r >= crash_at_[p]) return;  // crash: silent stop
      std::this_thread::sleep_until(start + r * opt_.round_period);
      // Drain the bus: decode frames into round-indexed inboxes.
      for (const Bytes& frame : bus_->drain(p)) ingest(proc, arena, frame);
      // End of round: compute and broadcast the batch.
      auto out = proc.end_of_round();
      bus_->broadcast(encode_frame(out, arena));
      if (!noted && proc.decision().has_value()) {
        decisions_[p] = proc.decision();
        noted = true;
        decided_count_.fetch_add(1, std::memory_order_acq_rel);
      }
      // Once everybody alive has decided, a few more frozen re-broadcasts
      // (HaltPolicy::kContinueForever in spirit) and we are done.
      if (decided_count_.load(std::memory_order_acquire) >= live_target_) {
        if (++grace >= 3) return;
      }
    }
  }

  Bytes encode_frame(const typename GirafProcess<M>::Outgoing& out,
                     HistoryArena* arena) {
    ByteWriter w;
    w.u64(out.round);
    w.u32(static_cast<std::uint32_t>(out.batch.size()));
    for (const M& m : out.batch) {
      Bytes b = Codec::encode(m, arena);
      w.u32(static_cast<std::uint32_t>(b.size()));
      for (std::uint8_t byte : b) w.u8(byte);
    }
    return w.take();
  }

  void ingest(GirafProcess<M>& proc, HistoryArena* arena, const Bytes& frame) {
    ByteReader r(frame);
    auto round = r.u64();
    auto count = r.u32();
    if (!round || !count || *round == 0) return;  // malformed: drop
    std::vector<M> batch;
    // A corrupt count must not drive a huge allocation; every message
    // occupies at least its u32 length prefix, so the frame size bounds
    // any plausible count (oversized frames fail decode below anyway).
    batch.reserve(std::min<std::size_t>(*count, frame.size() / 4 + 1));
    for (std::uint32_t i = 0; i < *count; ++i) {
      auto len = r.u32();
      if (!len) return;
      Bytes body;
      body.reserve(*len);
      for (std::uint32_t j = 0; j < *len; ++j) {
        auto byte = r.u8();
        if (!byte) return;
        body.push_back(*byte);
      }
      auto m = Codec::decode(body, arena);
      if (!m) return;
      batch.push_back(std::move(*m));
    }
    proc.receive(std::move(batch), *round);
  }

  BroadcastBus* bus_;
  RealtimeOptions opt_;
  std::size_t n_;
  std::vector<std::unique_ptr<HistoryArena>> arenas_;
  std::vector<std::unique_ptr<GirafProcess<M>>> procs_;
  std::vector<Round> crash_at_;
  std::vector<std::optional<Value>> decisions_;
  std::atomic<std::size_t> decided_count_{0};
  std::size_t live_target_ = 0;
};

using RealtimeEsCluster = RealtimeCluster<EsMessage, EsWireCodec>;
using RealtimeEssCluster = RealtimeCluster<EssMessage, EssWireCodec>;

}  // namespace anon
