// Binary wire codecs for the algorithm messages — what a deployment off
// the simulator actually puts on the network.  Self-delimiting, versioned
// by a one-byte tag, with defensive decoding (a malformed buffer yields
// nullopt, never UB).
//
// Formats (all integers little-endian):
//   EsMessage   := u8 tag('E') u32 count {i64 value-or-⊥-marker}*
//   EssMessage  := u8 tag('S') u32 nprop {val}* history counters
//     history   := u32 len {val}*
//     counters  := u32 n {history u64 count}*
//   val         := u8 kind(0=⊥,1=payload) [i64 payload]
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "algo/es_consensus.hpp"
#include "algo/ess_consensus.hpp"

namespace anon {

using Bytes = std::vector<std::uint8_t>;

// Low-level primitives (exposed for tests and other codecs).
class ByteWriter {
 public:
  void u8(std::uint8_t v) { out_.push_back(v); }
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  Bytes take() { return std::move(out_); }
  const Bytes& bytes() const { return out_; }

 private:
  Bytes out_;
};

class ByteReader {
 public:
  explicit ByteReader(const Bytes& in) : in_(in) {}
  std::optional<std::uint8_t> u8();
  std::optional<std::uint32_t> u32();
  std::optional<std::uint64_t> u64();
  std::optional<std::int64_t> i64();
  bool exhausted() const { return pos_ == in_.size(); }

 private:
  const Bytes& in_;
  std::size_t pos_ = 0;
};

// EsMessage (a ValueSet).
Bytes encode_es_message(const EsMessage& m);
std::optional<EsMessage> decode_es_message(const Bytes& in);

// EssMessage; decoding interns histories into the provided arena.
Bytes encode_ess_message(const EssMessage& m);
std::optional<EssMessage> decode_ess_message(const Bytes& in,
                                             HistoryArena* arena);

}  // namespace anon
