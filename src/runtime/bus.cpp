#include "runtime/bus.hpp"

namespace anon {

BroadcastBus::BroadcastBus(std::size_t subscribers,
                           std::unique_ptr<LinkPolicy> policy)
    : queues_(subscribers), policy_(std::move(policy)) {
  if (!policy_) policy_ = std::make_unique<LinkPolicy>();
}

void BroadcastBus::broadcast(const Bytes& payload) {
  const auto now = std::chrono::steady_clock::now();
  std::lock_guard<std::mutex> lock(mu_);
  ++broadcasts_;
  for (std::size_t s = 0; s < queues_.size(); ++s) {
    auto delay = policy_->delivery_delay(s);
    if (!delay.has_value()) continue;  // dropped
    queues_[s].push_back(Item{now + *delay, payload});
  }
}

std::vector<Bytes> BroadcastBus::drain(std::size_t subscriber) {
  const auto now = std::chrono::steady_clock::now();
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Bytes> out;
  auto& q = queues_[subscriber];
  // Due items can be interleaved with not-yet-due ones (per-link jitter);
  // collect the due ones and keep the rest.
  std::deque<Item> keep;
  for (auto& item : q) {
    if (item.due <= now)
      out.push_back(std::move(item.payload));
    else
      keep.push_back(std::move(item));
  }
  q.swap(keep);
  return out;
}

std::uint64_t BroadcastBus::broadcasts() const {
  std::lock_guard<std::mutex> lock(mu_);
  return broadcasts_;
}

}  // namespace anon
