// An in-process broadcast bus with real threads and wall-clock delays —
// the deployment-shaped substrate (think UDP broadcast on a LAN, or a
// sensor radio).  Subscribers are ANONYMOUS: the bus carries no sender
// identity, only bytes.
//
// Delivery policy per (subscriber, message): an optional delay and an
// optional drop, decided by a pluggable `LinkPolicy` (the real-time
// analogue of the simulator's DelayModel).  The default policy delivers
// immediately and reliably.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "env/faults.hpp"
#include "net/schedule.hpp"
#include "runtime/codec.hpp"

namespace anon {

class LinkPolicy {
 public:
  virtual ~LinkPolicy() = default;
  // Delay before `subscriber` sees a message broadcast now; nullopt = drop.
  // Called under the bus lock: keep it cheap.
  virtual std::optional<std::chrono::milliseconds> delivery_delay(
      std::size_t subscriber) {
    (void)subscriber;
    return std::chrono::milliseconds(0);
  }
};

// Random per-link jitter with optional loss (loss breaks the reliable-
// broadcast assumption — useful for demonstrating what the algorithms'
// safety tolerates even off-spec).
//
// The loss knob is the realtime face of the simulator's fault layer: the
// seed goes through the same fault_stream_seed derivation as FaultPlan and
// each verdict is the same hash_chance draw over a hash_mix fate hash
// (env/faults.hpp), keyed by (delivery sequence, subscriber) instead of
// (round, sender, receiver).  `loss = p` here and `loss_prob = p` in a
// FaultParams therefore mean the same coin, and a pinned seed reproduces
// the same drop pattern in either backend.
class JitterPolicy final : public LinkPolicy {
 public:
  JitterPolicy(std::uint64_t seed, std::chrono::milliseconds max_jitter,
               double loss = 0.0)
      : seed_(fault_stream_seed(seed, 0)), max_jitter_(max_jitter),
        loss_(loss) {}
  std::optional<std::chrono::milliseconds> delivery_delay(
      std::size_t subscriber) override {
    const std::uint64_t h =
        hash_mix(seed_, static_cast<std::uint64_t>(seq_++),
                 static_cast<std::uint64_t>(subscriber), 0);
    if (loss_ > 0 && hash_chance(h, loss_)) return std::nullopt;
    return std::chrono::milliseconds(static_cast<std::int64_t>(hash_below(
        h * 0x9e3779b97f4a7c15ULL,
        static_cast<std::uint64_t>(max_jitter_.count()) + 1)));
  }

 private:
  std::uint64_t seed_;
  std::uint64_t seq_ = 0;  // called under the bus lock (see LinkPolicy)
  std::chrono::milliseconds max_jitter_;
  double loss_;
};

class BroadcastBus {
 public:
  explicit BroadcastBus(std::size_t subscribers,
                        std::unique_ptr<LinkPolicy> policy = nullptr);

  std::size_t subscribers() const { return queues_.size(); }

  // Anonymous broadcast: every subscriber (including the sender's own
  // queue — callers typically skip self-delivery at a higher layer, but
  // GIRAF tolerates duplicates anyway) receives the payload.
  void broadcast(const Bytes& payload);

  // Drains every message due for `subscriber` (non-blocking).
  std::vector<Bytes> drain(std::size_t subscriber);

  std::uint64_t broadcasts() const;

 private:
  struct Item {
    std::chrono::steady_clock::time_point due;
    Bytes payload;
  };
  mutable std::mutex mu_;
  std::vector<std::deque<Item>> queues_;
  std::unique_ptr<LinkPolicy> policy_;
  std::uint64_t broadcasts_ = 0;
};

}  // namespace anon
