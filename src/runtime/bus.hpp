// An in-process broadcast bus with real threads and wall-clock delays —
// the deployment-shaped substrate (think UDP broadcast on a LAN, or a
// sensor radio).  Subscribers are ANONYMOUS: the bus carries no sender
// identity, only bytes.
//
// Delivery policy per (subscriber, message): an optional delay and an
// optional drop, decided by a pluggable `LinkPolicy` (the real-time
// analogue of the simulator's DelayModel).  The default policy delivers
// immediately and reliably.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "runtime/codec.hpp"

namespace anon {

class LinkPolicy {
 public:
  virtual ~LinkPolicy() = default;
  // Delay before `subscriber` sees a message broadcast now; nullopt = drop.
  // Called under the bus lock: keep it cheap.
  virtual std::optional<std::chrono::milliseconds> delivery_delay(
      std::size_t subscriber) {
    (void)subscriber;
    return std::chrono::milliseconds(0);
  }
};

// Random per-link jitter with optional loss (loss breaks the reliable-
// broadcast assumption — useful for demonstrating what the algorithms'
// safety tolerates even off-spec).
class JitterPolicy final : public LinkPolicy {
 public:
  JitterPolicy(std::uint64_t seed, std::chrono::milliseconds max_jitter,
               double loss = 0.0)
      : rng_(seed), max_jitter_(max_jitter), loss_(loss) {}
  std::optional<std::chrono::milliseconds> delivery_delay(std::size_t) override {
    if (loss_ > 0 && rng_.chance(loss_)) return std::nullopt;
    return std::chrono::milliseconds(
        static_cast<std::int64_t>(rng_.below(
            static_cast<std::uint64_t>(max_jitter_.count()) + 1)));
  }

 private:
  Rng rng_;
  std::chrono::milliseconds max_jitter_;
  double loss_;
};

class BroadcastBus {
 public:
  explicit BroadcastBus(std::size_t subscribers,
                        std::unique_ptr<LinkPolicy> policy = nullptr);

  std::size_t subscribers() const { return queues_.size(); }

  // Anonymous broadcast: every subscriber (including the sender's own
  // queue — callers typically skip self-delivery at a higher layer, but
  // GIRAF tolerates duplicates anyway) receives the payload.
  void broadcast(const Bytes& payload);

  // Drains every message due for `subscriber` (non-blocking).
  std::vector<Bytes> drain(std::size_t subscriber);

  std::uint64_t broadcasts() const;

 private:
  struct Item {
    std::chrono::steady_clock::time_point due;
    Bytes payload;
  };
  mutable std::mutex mu_;
  std::vector<std::deque<Item>> queues_;
  std::unique_ptr<LinkPolicy> policy_;
  std::uint64_t broadcasts_ = 0;
};

}  // namespace anon
