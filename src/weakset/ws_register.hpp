// Proposition 1 — a weak-set implements a regular multi-writer
// multi-reader register.
//
// Construction (§5.1): to write v, a process reads the weak-set, stores the
// content as HISTORY, and adds (v, HISTORY) to the set.  To read, it reads
// the weak-set and returns the highest value among those accompanied by a
// HISTORY of maximal length.  We carry |HISTORY| as an integer rank —
// "maximal length" only ever compares sizes.
//
// Regularity (MWMR): a read not concurrent with any write returns the value
// of a most-recently-completed write; a read concurrent with writes may
// return any of their values instead.  `check_regular_register` validates
// whole histories against this.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/value.hpp"
#include "env/environment.hpp"
#include "env/validate.hpp"
#include "net/schedule.hpp"
#include "weakset/ws_backend.hpp"

namespace anon {

struct WsRegElement {
  Value value;
  std::uint32_t rank;  // |HISTORY| at write time

  friend auto operator<=>(const WsRegElement&, const WsRegElement&) = default;

  // Packing into a plain weak-set Value so the construction runs unchanged
  // over the MS weak-set of Algorithm 4 (payload must fit 31 bits).
  Value encode() const;
  static WsRegElement decode(Value packed);
};

// A decoded weak-set snapshot: a flat vector of unique elements.  The
// harness decodes it straight out of the weak-set's sorted ValueSet, so
// the vector is already unique; no element order is required — the pure
// transformations below are single linear scans either way.  (This
// replaced a `std::set<WsRegElement>` rebuilt node-by-node per operation;
// the caller now reuses one scratch vector's capacity across ops.)
using WsRegSnapshot = std::vector<WsRegElement>;

// The pure transformation of Proposition 1.
WsRegElement make_write_element(Value v, const WsRegSnapshot& snapshot);
std::optional<Value> register_read(const WsRegSnapshot& snapshot);

// ---------- regularity checking ----------

struct RegOpRecord {
  enum class Kind { kRead, kWrite };
  Kind kind;
  std::optional<Value> value;  // written value / read result (nullopt: ⊥)
  std::uint64_t start = 0;
  std::uint64_t end = 0;
  std::size_t process = 0;
};

struct RegCheckResult {
  bool ok = true;
  std::string violation;
};

RegCheckResult check_regular_register(const std::vector<RegOpRecord>& ops);

// ---------- harness over the MS weak-set (Algorithm 4) ----------

struct RegScriptOp {
  Round round;
  std::size_t process;
  bool is_write;
  Value value;  // for writes
};

struct RegisterRunResult {
  std::vector<RegOpRecord> records;
  RegCheckResult check;
  Round rounds_executed = 0;
  std::uint64_t write_latency_rounds_total = 0;
  std::size_t writes_completed = 0;
  EnvCheckResult env_check;  // populated when validate_env
  // Cohort backend only: final / peak equivalence-class counts.
  std::size_t cohort_classes = 0;
  std::size_t cohort_peak_classes = 0;
};

// Runs the Prop-1 register over Algorithm 4 in the given MS-class
// environment on the selected backend (ws_backend.hpp); returns the
// timestamped operation history plus its regularity verdict.
RegisterRunResult run_register_over_ms(const EnvParams& env,
                                       const CrashPlan& crashes,
                                       std::vector<RegScriptOp> script,
                                       const WsRunOptions& opt);

// Expanded-backend shorthand (the original signature).
RegisterRunResult run_register_over_ms(const EnvParams& env,
                                       const CrashPlan& crashes,
                                       std::vector<RegScriptOp> script,
                                       Round extra_rounds = 60,
                                       bool validate_env = false);

}  // namespace anon
