#include "weakset/ws_from_mwmr.hpp"

#include "common/check.hpp"

namespace anon {

namespace {

class AddOp final : public StepOp {
 public:
  AddOp(SharedMemory<bool>* mem, std::size_t idx) : mem_(mem), idx_(idx) {}
  bool step() override {
    mem_->write(idx_, true);
    return true;
  }

 private:
  SharedMemory<bool>* mem_;
  std::size_t idx_;
};

class GetOp final : public StepOp {
 public:
  GetOp(SharedMemory<bool>* mem, const std::vector<Value>* domain,
        ValueSet* out)
      : mem_(mem), domain_(domain), out_(out) {}
  bool step() override {
    if (mem_->read(next_)) out_->insert((*domain_)[next_]);
    ++next_;
    return next_ == mem_->size();
  }

 private:
  SharedMemory<bool>* mem_;
  const std::vector<Value>* domain_;
  ValueSet* out_;
  std::size_t next_ = 0;
};

}  // namespace

std::size_t WsFromMwmr::index_of(Value v) const {
  for (std::size_t i = 0; i < domain_.size(); ++i)
    if (domain_[i] == v) return i;
  ANON_CHECK_MSG(false, "value outside the finite domain");
  return 0;
}

std::unique_ptr<StepOp> WsFromMwmr::make_add(Value v) {
  return std::make_unique<AddOp>(&mem_, index_of(v));
}

std::unique_ptr<StepOp> WsFromMwmr::make_get(ValueSet* out) {
  return std::make_unique<GetOp>(&mem_, &domain_, out);
}

std::vector<WsOpRecord> run_ws_from_mwmr(
    const std::vector<Value>& domain,
    const std::vector<MwmrWsScriptOp>& script, std::uint64_t seed) {
  WsFromMwmr ws(domain);
  StepScheduler sched(seed);
  std::vector<WsOpRecord> records(script.size());
  // Presized once (stable addresses), no per-get unique_ptr.
  std::vector<ValueSet> outs(script.size());

  for (std::size_t i = 0; i < script.size(); ++i) {
    const MwmrWsScriptOp& op = script[i];
    records[i].process = op.process;
    records[i].start = op.at_tick;
    if (op.is_add) {
      records[i].kind = WsOpRecord::Kind::kAdd;
      records[i].value = op.value;
      sched.inject(op.at_tick, ws.make_add(op.value),
                   [&records, i](std::uint64_t end) { records[i].end = end; });
    } else {
      records[i].kind = WsOpRecord::Kind::kGet;
      ValueSet* out = &outs[i];
      sched.inject(op.at_tick, ws.make_get(out),
                   [&records, i, out](std::uint64_t end) {
                     records[i].end = end;
                     records[i].result = std::move(*out);
                   });
    }
  }
  sched.run();
  return records;
}

}  // namespace anon
