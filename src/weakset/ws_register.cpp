#include "weakset/ws_register.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <numeric>
#include <optional>
#include <sstream>

#include "common/check.hpp"
#include "net/cohort.hpp"
#include "weakset/ms_weak_set.hpp"

namespace anon {

Value WsRegElement::encode() const {
  const std::int64_t payload = value.is_bottom() ? 0 : value.get();
  ANON_CHECK_MSG(payload >= 0 && payload < (1LL << 31),
                 "register payloads must fit 31 bits for packing");
  return Value((static_cast<std::int64_t>(rank) << 31) | payload);
}

WsRegElement WsRegElement::decode(Value packed) {
  const std::int64_t raw = packed.get();
  return {Value(raw & ((1LL << 31) - 1)),
          static_cast<std::uint32_t>(raw >> 31)};
}

WsRegElement make_write_element(Value v, const WsRegSnapshot& snapshot) {
  return {v, static_cast<std::uint32_t>(snapshot.size())};
}

std::optional<Value> register_read(const WsRegSnapshot& snapshot) {
  if (snapshot.empty()) return std::nullopt;
  std::uint32_t best_rank = 0;
  for (const auto& e : snapshot) best_rank = std::max(best_rank, e.rank);
  std::optional<Value> best;
  for (const auto& e : snapshot)
    if (e.rank == best_rank && (!best || *best < e.value)) best = e.value;
  return best;
}

// Sort-plus-sweep regularity check, O(ops log ops) total (the seed version
// was reads × writes² — every read rescanned every write pair for
// supersession).  Key fact: a write w is superseded w.r.t. read r iff some
// write w2 has w.end < w2.start and w2.end < r.start — i.e. iff
// w.end < S(r) where S(r) = max{ start of writes completed before r }.
// S(r) is a prefix-max over writes sorted by end; validity of a
// (value, read) pair is then one prefix-max query over that value's writes
// sorted by start.  The reference implementation survives as
// ref_check_regular_register (weakset/reference_checkers.hpp) and the two
// are pitted against each other on randomized and violating histories in
// tests/spec_sweep_test.cpp.
RegCheckResult check_regular_register(const std::vector<RegOpRecord>& ops) {
  struct ByEnd {
    std::uint64_t end;
    std::uint64_t start;
  };
  std::vector<ByEnd> by_end;  // all writes, sorted by end
  // Per written value: (start, prefix-max end) sorted by start.
  struct ByStart {
    std::uint64_t start;
    std::uint64_t max_end;  // max end among this value's writes up to here
  };
  std::map<std::optional<Value>, std::vector<ByStart>> by_value;

  for (const RegOpRecord& w : ops) {
    if (w.kind != RegOpRecord::Kind::kWrite) continue;
    by_end.push_back({w.end, w.start});
    by_value[w.value].push_back({w.start, w.end});
  }
  std::sort(by_end.begin(), by_end.end(),
            [](const ByEnd& a, const ByEnd& b) { return a.end < b.end; });
  // prefix_max_start[i] = max start among by_end[0..i].
  std::vector<std::uint64_t> prefix_max_start(by_end.size());
  for (std::size_t i = 0; i < by_end.size(); ++i)
    prefix_max_start[i] =
        i == 0 ? by_end[i].start : std::max(prefix_max_start[i - 1], by_end[i].start);
  for (auto& [v, writes] : by_value) {
    std::sort(writes.begin(), writes.end(),
              [](const ByStart& a, const ByStart& b) { return a.start < b.start; });
    for (std::size_t i = 1; i < writes.size(); ++i)
      writes[i].max_end = std::max(writes[i].max_end, writes[i - 1].max_end);
  }

  for (const RegOpRecord& r : ops) {
    if (r.kind != RegOpRecord::Kind::kRead) continue;
    // Writes completed strictly before the read started: count and S(r).
    const std::size_t completed =
        static_cast<std::size_t>(std::lower_bound(
                                     by_end.begin(), by_end.end(), r.start,
                                     [](const ByEnd& w, std::uint64_t key) {
                                       return w.end < key;
                                     }) -
                                 by_end.begin());
    const bool have_superseder = completed > 0;
    const std::uint64_t s_bound =
        have_superseder ? prefix_max_start[completed - 1] : 0;

    bool ok = false;
    if (!r.value.has_value() && completed == 0) ok = true;  // initial read
    if (!ok) {
      auto it = by_value.find(r.value);
      if (it != by_value.end()) {
        const std::vector<ByStart>& writes = it->second;
        // Largest index with start <= r.end.
        const std::size_t idx = static_cast<std::size_t>(
            std::upper_bound(writes.begin(), writes.end(), r.end,
                             [](std::uint64_t key, const ByStart& w) {
                               return key < w.start;
                             }) -
            writes.begin());
        // Valid iff some such write is not superseded: its end reaches at
        // least S(r).
        if (idx > 0 &&
            (!have_superseder || writes[idx - 1].max_end >= s_bound))
          ok = true;
      }
    }
    if (!ok) {
      std::ostringstream os;
      os << "read@[" << r.start << "," << r.end << ") by p" << r.process
         << " returned "
         << (r.value ? r.value->to_string() : std::string("⊥"))
         << " which is neither a current nor a concurrent write";
      return {false, os.str()};
    }
  }
  return {};
}

namespace {

// The scripted-operation loop, shared by both backends (ws_backend.hpp):
// `peek(p)` reads p's weak-set automaton (served for dead processes too),
// `start_add(p, v)` injects the blocking add carrying the encoded write
// element.  Mirrors run_ws_script in ms_weak_set.cpp.
template <typename Net, typename Peek, typename StartAdd>
RegisterRunResult run_reg_script(Net& net, const CrashPlan& crashes,
                                 std::vector<RegScriptOp> script,
                                 Round max_rounds, Peek&& peek,
                                 StartAdd&& start_add) {
  std::sort(script.begin(), script.end(),
            [](const RegScriptOp& a, const RegScriptOp& b) {
              return a.round < b.round;
            });

  RegisterRunResult out;
  std::size_t next_op = 0;
  std::map<std::size_t, std::pair<std::size_t, Round>> in_flight;

  // One scratch snapshot reused across every operation: the weak-set's
  // ValueSet is already sorted-unique, so decoding is a linear append —
  // no per-op tree rebuild, no allocation once the capacity is warm.
  WsRegSnapshot snap;
  auto snapshot_of = [&](std::size_t p) -> const WsRegSnapshot& {
    snap.clear();
    for (const Value& v : peek(p).get())
      snap.push_back(WsRegElement::decode(v));
    return snap;
  };

  net.run([&](const Net& nn) {
    const Round r = nn.round();
    for (auto it = in_flight.begin(); it != in_flight.end();) {
      if (!peek(it->first).add_blocked()) {
        out.records[it->second.first].end = (r - 1) * 4 + 3;
        out.write_latency_rounds_total += (r - 1) - it->second.second;
        ++out.writes_completed;
        it = in_flight.erase(it);
      } else {
        ++it;
      }
    }
    while (next_op < script.size() && script[next_op].round <= r) {
      const RegScriptOp& op = script[next_op];
      ++next_op;
      if (crashes.crash_round(op.process) <= r) continue;
      RegOpRecord rec;
      rec.process = op.process;
      rec.start = r * 4 + 1;
      if (op.is_write) {
        if (peek(op.process).add_blocked())
          continue;  // previous write still in flight
        rec.kind = RegOpRecord::Kind::kWrite;
        rec.value = op.value;
        start_add(op.process,
                  make_write_element(op.value, snapshot_of(op.process))
                      .encode());
        out.records.push_back(rec);
        in_flight[op.process] = {out.records.size() - 1, r};
      } else {
        rec.kind = RegOpRecord::Kind::kRead;
        rec.value = register_read(snapshot_of(op.process));
        rec.end = rec.start;
        out.records.push_back(rec);
      }
    }
    return false;
  });
  out.rounds_executed = net.round();

  // Writes never completed (crashed writers): leave end at the horizon so
  // the checker treats them as concurrent-with-everything-later.
  for (const auto& [p, rec] : in_flight) {
    (void)p;
    out.records[rec.first].end = max_rounds * 4 + 3;
  }
  out.check = check_regular_register(out.records);
  return out;
}

}  // namespace

RegisterRunResult run_register_over_ms(const EnvParams& env,
                                       const CrashPlan& crashes,
                                       std::vector<RegScriptOp> script,
                                       const WsRunOptions& ropt) {
  const std::size_t n = env.n;
  EnvDelayModel delays(env, crashes);
  Round last_round = 1;
  for (const auto& op : script) last_round = std::max(last_round, op.round);
  const Round max_rounds = last_round + ropt.extra_rounds;
  std::optional<FaultPlan> faults;
  if (ropt.faults.active()) faults.emplace(ropt.faults, env.seed, n, &delays);

  if (ropt.backend == WsBackend::kCohort) {
    ANON_CHECK_MSG(!ropt.validate_env,
                   "backend=cohort records no trace; set validate_env=false");
    std::vector<CohortNet<ValueSet>::InitGroup> groups(1);
    groups[0].automaton = std::make_unique<MsWeakSetAutomaton>();
    groups[0].members.resize(n);
    std::iota(groups[0].members.begin(), groups[0].members.end(), ProcId{0});
    CohortOptions copt;
    copt.seed = env.seed;
    copt.max_rounds = max_rounds;
    copt.faults = faults ? &*faults : nullptr;
    copt.engine_threads = ropt.engine_threads;
    copt.engine_shards = ropt.engine_shards;
    CohortNet<ValueSet> net(std::move(groups), delays, crashes, copt);
    RegisterRunResult out = run_reg_script(
        net, crashes, std::move(script), max_rounds,
        [&net](std::size_t p) -> const MsWeakSetAutomaton& {
          return dynamic_cast<const MsWeakSetAutomaton&>(
              net.automaton_view(p));
        },
        [&net](std::size_t p, Value v) {
          net.mutate_member(p, [v](Automaton<ValueSet>& a) {
            dynamic_cast<MsWeakSetAutomaton&>(a).start_add(v);
          });
        });
    out.cohort_classes = net.stats().cohorts;
    out.cohort_peak_classes = net.stats().max_cohorts;
    return out;
  }

  std::vector<std::unique_ptr<Automaton<ValueSet>>> autos;
  autos.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    autos.push_back(std::make_unique<MsWeakSetAutomaton>());
  LockstepOptions opt;
  opt.seed = env.seed;
  opt.max_rounds = max_rounds;
  opt.engine_threads = ropt.engine_threads;
  opt.engine_shards = ropt.engine_shards;
  opt.faults = faults ? &*faults : nullptr;
  // The trace exists only to certify the environment: without the check it
  // would be Θ(rounds·n²) of dead weight (fatal at the bench scales).
  opt.record_trace = ropt.validate_env;
  opt.record_deliveries = ropt.validate_env;
  LockstepNet<ValueSet> net(std::move(autos), delays, crashes, opt);
  RegisterRunResult out = run_reg_script(
      net, crashes, std::move(script), max_rounds,
      [&net](std::size_t p) -> const MsWeakSetAutomaton& {
        return dynamic_cast<MsWeakSetAutomaton&>(net.process(p).automaton());
      },
      [&net](std::size_t p, Value v) {
        dynamic_cast<MsWeakSetAutomaton&>(net.process(p).automaton())
            .start_add(v);
      });
  if (ropt.validate_env)
    out.env_check = check_environment(net.trace(), n, crashes.correct(n));
  return out;
}

RegisterRunResult run_register_over_ms(const EnvParams& env,
                                       const CrashPlan& crashes,
                                       std::vector<RegScriptOp> script,
                                       Round extra_rounds, bool validate_env) {
  WsRunOptions opt;
  opt.extra_rounds = extra_rounds;
  opt.validate_env = validate_env;
  return run_register_over_ms(env, crashes, std::move(script), opt);
}

}  // namespace anon
