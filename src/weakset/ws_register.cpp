#include "weakset/ws_register.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <sstream>

#include "common/check.hpp"
#include "weakset/ms_weak_set.hpp"

namespace anon {

Value WsRegElement::encode() const {
  const std::int64_t payload = value.is_bottom() ? 0 : value.get();
  ANON_CHECK_MSG(payload >= 0 && payload < (1LL << 31),
                 "register payloads must fit 31 bits for packing");
  return Value((static_cast<std::int64_t>(rank) << 31) | payload);
}

WsRegElement WsRegElement::decode(Value packed) {
  const std::int64_t raw = packed.get();
  return {Value(raw & ((1LL << 31) - 1)),
          static_cast<std::uint32_t>(raw >> 31)};
}

WsRegElement make_write_element(Value v,
                                const std::set<WsRegElement>& snapshot) {
  return {v, static_cast<std::uint32_t>(snapshot.size())};
}

std::optional<Value> register_read(const std::set<WsRegElement>& snapshot) {
  if (snapshot.empty()) return std::nullopt;
  std::uint32_t best_rank = 0;
  for (const auto& e : snapshot) best_rank = std::max(best_rank, e.rank);
  std::optional<Value> best;
  for (const auto& e : snapshot)
    if (e.rank == best_rank && (!best || *best < e.value)) best = e.value;
  return best;
}

RegCheckResult check_regular_register(const std::vector<RegOpRecord>& ops) {
  auto precedes = [](const RegOpRecord& a, const RegOpRecord& b) {
    return a.end < b.start;
  };
  for (const RegOpRecord& r : ops) {
    if (r.kind != RegOpRecord::Kind::kRead) continue;
    // Valid sources: writes started before the read ended and not strictly
    // superseded by another write that completed before the read started.
    bool initial_ok = true;  // reading ⊥/initial is fine iff no write ≺ read
    std::set<std::optional<Value>> valid;
    for (const RegOpRecord& w : ops) {
      if (w.kind != RegOpRecord::Kind::kWrite) continue;
      if (precedes(w, r)) initial_ok = false;
      if (w.start > r.end) continue;
      bool superseded = false;
      for (const RegOpRecord& w2 : ops) {
        if (w2.kind != RegOpRecord::Kind::kWrite) continue;
        if (precedes(w, w2) && precedes(w2, r)) {
          superseded = true;
          break;
        }
      }
      if (!superseded) valid.insert(w.value);
    }
    if (initial_ok) valid.insert(std::nullopt);
    if (valid.count(r.value) == 0) {
      std::ostringstream os;
      os << "read@[" << r.start << "," << r.end << ") by p" << r.process
         << " returned "
         << (r.value ? r.value->to_string() : std::string("⊥"))
         << " which is neither a current nor a concurrent write";
      return {false, os.str()};
    }
  }
  return {};
}

RegisterRunResult run_register_over_ms(const EnvParams& env,
                                       const CrashPlan& crashes,
                                       std::vector<RegScriptOp> script,
                                       Round extra_rounds) {
  const std::size_t n = env.n;
  std::vector<std::unique_ptr<Automaton<ValueSet>>> autos;
  autos.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    autos.push_back(std::make_unique<MsWeakSetAutomaton>());
  EnvDelayModel delays(env, crashes);

  Round last_round = 1;
  for (const auto& op : script) last_round = std::max(last_round, op.round);
  LockstepOptions opt;
  opt.seed = env.seed;
  opt.max_rounds = last_round + extra_rounds;

  LockstepNet<ValueSet> net(std::move(autos), delays, crashes, opt);
  std::sort(script.begin(), script.end(),
            [](const RegScriptOp& a, const RegScriptOp& b) {
              return a.round < b.round;
            });

  RegisterRunResult out;
  std::size_t next_op = 0;
  std::map<std::size_t, std::pair<std::size_t, Round>> in_flight;

  auto automaton_of = [&net](std::size_t p) -> MsWeakSetAutomaton& {
    return dynamic_cast<MsWeakSetAutomaton&>(net.process(p).automaton());
  };
  auto snapshot_of = [&](std::size_t p) {
    std::set<WsRegElement> snap;
    for (const Value& v : automaton_of(p).get())
      snap.insert(WsRegElement::decode(v));
    return snap;
  };

  net.run([&](const LockstepNet<ValueSet>& nn) {
    const Round r = nn.round();
    for (auto it = in_flight.begin(); it != in_flight.end();) {
      if (!automaton_of(it->first).add_blocked()) {
        out.records[it->second.first].end = (r - 1) * 4 + 3;
        out.write_latency_rounds_total += (r - 1) - it->second.second;
        ++out.writes_completed;
        it = in_flight.erase(it);
      } else {
        ++it;
      }
    }
    while (next_op < script.size() && script[next_op].round <= r) {
      const RegScriptOp& op = script[next_op];
      ++next_op;
      if (crashes.crash_round(op.process) <= r) continue;
      RegOpRecord rec;
      rec.process = op.process;
      rec.start = r * 4 + 1;
      if (op.is_write) {
        MsWeakSetAutomaton& a = automaton_of(op.process);
        if (a.add_blocked()) continue;  // previous write still in flight
        rec.kind = RegOpRecord::Kind::kWrite;
        rec.value = op.value;
        a.start_add(make_write_element(op.value, snapshot_of(op.process))
                        .encode());
        out.records.push_back(rec);
        in_flight[op.process] = {out.records.size() - 1, r};
      } else {
        rec.kind = RegOpRecord::Kind::kRead;
        rec.value = register_read(snapshot_of(op.process));
        rec.end = rec.start;
        out.records.push_back(rec);
      }
    }
    return false;
  });
  out.rounds_executed = net.round();

  // Writes never completed (crashed writers): leave end at the horizon so
  // the checker treats them as concurrent-with-everything-later.
  for (const auto& [p, rec] : in_flight) {
    (void)p;
    out.records[rec.first].end = opt.max_rounds * 4 + 3;
  }
  out.check = check_regular_register(out.records);
  return out;
}

}  // namespace anon
