#include "weakset/ms_weak_set.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <numeric>
#include <optional>

#include "common/check.hpp"
#include "env/validate.hpp"
#include "net/cohort.hpp"

namespace anon {

std::uint64_t MsWeakSetAutomaton::state_digest() const {
  std::uint64_t h = 0x1f83d9abfb41bd6bULL;
  h = detail::mix_digest(h, val_.stable_hash());
  h = detail::mix_digest(h, stable_hash(proposed_));
  h = detail::mix_digest(h, stable_hash(written_));
  h = detail::mix_digest(h, block_ ? 1 : 0);
  return h;
}

bool MsWeakSetAutomaton::state_equals(const Automaton<ValueSet>& other) const {
  const auto* o = dynamic_cast<const MsWeakSetAutomaton*>(&other);
  if (o == nullptr) return false;
  return val_ == o->val_ && proposed_ == o->proposed_ &&
         written_ == o->written_ && block_ == o->block_;
}

ValueSet MsWeakSetAutomaton::initialize() {
  // Lines 1–4: VAL := ⊥; PROPOSED := WRITTEN := ∅; BLOCK := false.
  val_ = Value::Bottom();
  proposed_.clear();
  written_.clear();
  block_ = false;
  return proposed_;
}

void MsWeakSetAutomaton::start_add(Value v) {
  // Lines 7–10 (the wait of line 11 is realized by the harness polling
  // add_blocked() after each compute).
  ANON_CHECK_MSG(!block_, "Algorithm 4 serializes adds per process");
  proposed_.insert(v);
  val_ = v;
  block_ = true;
}

ValueSet MsWeakSetAutomaton::compute(Round k, const Inboxes<ValueSet>& inboxes) {
  // Line 14: WRITTEN := ∩ of this round's messages (capacity-reusing
  // assignment, then in-place intersections).
  const InboxView<ValueSet>& msgs = inbox_at(inboxes, k);
  ANON_CHECK(!msgs.empty());
  auto it = msgs.begin();
  written_ = *it;
  for (++it; it != msgs.end(); ++it) set_intersect_inplace(written_, *it);

  // Line 15: PROPOSED ∪= messages of ALL live rounds (late deliveries
  // count; the window clamps far-late rounds into the k-1 slot and only
  // drops a slot after the compute that follows its delivery, so every
  // delivered message is unioned here at least once).
  inboxes.for_each_live([this](Round, const InboxView<ValueSet>& batch) {
    for (const ValueSet& m : batch) set_union_inplace(proposed_, m);
  });

  // Line 16: an in-flight add completes once its value is written.
  if (block_ && written_.count(val_) > 0) block_ = false;

  return proposed_;
}

namespace {

// The scripted-operation loop, shared by both backends.  `peek(p)` reads
// p's weak-set automaton (served for dead processes too — frozen at the
// final compute on either engine); `start_add(p, v)` injects the blocking
// add.  Both engines fire the stop callback at the same point of their
// round loop, so observation rounds line up byte-for-byte.
template <typename Net, typename Peek, typename StartAdd>
MsWeakSetRunResult run_ws_script(Net& net, const CrashPlan& crashes,
                                 std::vector<WsScriptOp> script,
                                 Round max_rounds, Peek&& peek,
                                 StartAdd&& start_add) {
  std::sort(script.begin(), script.end(),
            [](const WsScriptOp& a, const WsScriptOp& b) {
              return a.round < b.round;
            });

  MsWeakSetRunResult out;
  std::size_t next_op = 0;
  // In-flight adds: process -> (record index, inject round).
  std::map<std::size_t, std::pair<std::size_t, Round>> in_flight;

  net.run([&](const Net& nn) {
    const Round r = nn.round();
    // Completion phase: round r's computes have run for round r-1… poll
    // blocked adds first (phase 3 of the previous round).
    for (auto it = in_flight.begin(); it != in_flight.end();) {
      if (!peek(it->first).add_blocked()) {
        out.records[it->second.first].end = (r - 1) * 4 + 3;
        out.add_latency_rounds_total += (r - 1) - it->second.second;
        it = in_flight.erase(it);
      } else {
        ++it;
      }
    }
    // Injection phase (phase 1 of round r): start scripted ops.
    while (next_op < script.size() && script[next_op].round <= r) {
      const WsScriptOp& op = script[next_op];
      ++next_op;
      if (crashes.crash_round(op.process) <= r) continue;  // process dead
      WsOpRecord rec;
      rec.process = op.process;
      rec.start = r * 4 + 1;
      if (op.is_add) {
        if (peek(op.process).add_blocked())
          continue;  // previous add still in flight: skip
        rec.kind = WsOpRecord::Kind::kAdd;
        rec.value = op.value;
        start_add(op.process, op.value);
        out.records.push_back(rec);
        in_flight[op.process] = {out.records.size() - 1, r};
        ++out.adds;
      } else {
        rec.kind = WsOpRecord::Kind::kGet;
        rec.result = peek(op.process).get();
        rec.end = rec.start;  // instantaneous
        out.records.push_back(rec);
      }
    }
    return false;
  });
  out.rounds_executed = net.round();

  // Adds still blocked at the end (only possible for crashed processes —
  // Theorem 3's termination says correct processes never block forever).
  // Their records keep end = horizon, which the checker treats as
  // not-completed relative to all gets.
  for (const auto& [p, rec] : in_flight) {
    out.records[rec.first].end = max_rounds * 4 + 3;
    if (!crashes.ever_crashes(p)) out.all_adds_completed = false;
  }
  return out;
}

}  // namespace

MsWeakSetRunResult run_ms_weak_set(const EnvParams& env,
                                   const CrashPlan& crashes,
                                   std::vector<WsScriptOp> script,
                                   const WsRunOptions& ropt) {
  const std::size_t n = env.n;
  EnvDelayModel delays(env, crashes);
  Round last_round = 1;
  for (const auto& op : script) last_round = std::max(last_round, op.round);
  const Round max_rounds = last_round + ropt.extra_rounds;
  std::optional<FaultPlan> faults;
  if (ropt.faults.active()) faults.emplace(ropt.faults, env.seed, n, &delays);

  if (ropt.backend == WsBackend::kCohort) {
    ANON_CHECK_MSG(!ropt.validate_env,
                   "backend=cohort records no trace; set validate_env=false");
    // Algorithm 4 has no initial values: every process starts identical,
    // so the system is ONE class until operations or asymmetries split it.
    std::vector<CohortNet<ValueSet>::InitGroup> groups(1);
    groups[0].automaton = std::make_unique<MsWeakSetAutomaton>();
    groups[0].members.resize(n);
    std::iota(groups[0].members.begin(), groups[0].members.end(), ProcId{0});
    CohortOptions copt;
    copt.seed = env.seed;
    copt.max_rounds = max_rounds;
    copt.faults = faults ? &*faults : nullptr;
    copt.engine_threads = ropt.engine_threads;
    copt.engine_shards = ropt.engine_shards;
    CohortNet<ValueSet> net(std::move(groups), delays, crashes, copt);
    MsWeakSetRunResult out = run_ws_script(
        net, crashes, std::move(script), max_rounds,
        [&net](std::size_t p) -> const MsWeakSetAutomaton& {
          return dynamic_cast<const MsWeakSetAutomaton&>(
              net.automaton_view(p));
        },
        [&net](std::size_t p, Value v) {
          net.mutate_member(p, [v](Automaton<ValueSet>& a) {
            dynamic_cast<MsWeakSetAutomaton&>(a).start_add(v);
          });
        });
    out.cohort_classes = net.stats().cohorts;
    out.cohort_peak_classes = net.stats().max_cohorts;
    return out;
  }

  std::vector<std::unique_ptr<Automaton<ValueSet>>> autos;
  autos.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    autos.push_back(std::make_unique<MsWeakSetAutomaton>());
  LockstepOptions opt;
  opt.seed = env.seed;
  opt.max_rounds = max_rounds;
  opt.engine_threads = ropt.engine_threads;
  opt.engine_shards = ropt.engine_shards;
  opt.faults = faults ? &*faults : nullptr;
  // The trace exists only to certify the environment: without the check it
  // would be Θ(rounds·n²) of dead weight (fatal at the bench scales).
  opt.record_trace = ropt.validate_env;
  opt.record_deliveries = ropt.validate_env;
  LockstepNet<ValueSet> net(std::move(autos), delays, crashes, opt);
  MsWeakSetRunResult out = run_ws_script(
      net, crashes, std::move(script), max_rounds,
      [&net](std::size_t p) -> const MsWeakSetAutomaton& {
        return dynamic_cast<MsWeakSetAutomaton&>(net.process(p).automaton());
      },
      [&net](std::size_t p, Value v) {
        dynamic_cast<MsWeakSetAutomaton&>(net.process(p).automaton())
            .start_add(v);
      });
  if (ropt.validate_env)
    out.env_check = check_environment(net.trace(), n, crashes.correct(n));
  return out;
}

MsWeakSetRunResult run_ms_weak_set(const EnvParams& env,
                                   const CrashPlan& crashes,
                                   std::vector<WsScriptOp> script,
                                   Round extra_rounds, bool validate_env) {
  WsRunOptions opt;
  opt.extra_rounds = extra_rounds;
  opt.validate_env = validate_env;
  return run_ms_weak_set(env, crashes, std::move(script), opt);
}

}  // namespace anon
