// Proposition 3 — with a FINITE value domain, a weak-set is implementable
// from multi-writer multi-reader registers, for an unknown and anonymous
// set of processes.
//
// Construction: one boolean MWMR register B[v] per domain value v.
// add(v): write B[v] := true (one atomic step; writers need no identity —
// everybody writes the same constant, so concurrent writers are harmless).
// get(): read every B[v] (|domain| atomic steps) and return the set values.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/value.hpp"
#include "shm/register_sim.hpp"
#include "weakset/weak_set.hpp"

namespace anon {

class WsFromMwmr {
 public:
  // The fixed, finite value domain (known to everybody a priori).
  explicit WsFromMwmr(std::vector<Value> domain)
      : domain_(std::move(domain)), mem_(domain_.size(), false) {}

  const std::vector<Value>& domain() const { return domain_; }

  std::unique_ptr<StepOp> make_add(Value v);                // 1 step
  std::unique_ptr<StepOp> make_get(ValueSet* out);          // |domain| steps

 private:
  std::size_t index_of(Value v) const;
  std::vector<Value> domain_;
  SharedMemory<bool> mem_;
};

struct MwmrWsScriptOp {
  std::uint64_t at_tick;
  std::size_t process;  // informational only — the construction is anonymous
  bool is_add;
  Value value;
};

std::vector<WsOpRecord> run_ws_from_mwmr(
    const std::vector<Value>& domain,
    const std::vector<MwmrWsScriptOp>& script, std::uint64_t seed);

}  // namespace anon
