// Algorithm 4 — a weak-set in the MS environment (Theorem 3).
//
// Per round, every process broadcasts its accumulated PROPOSED set.
//   add(v): PROPOSED ∪= {v}; VAL := v; BLOCK := true; wait until a later
//           compute observes VAL ∈ WRITTEN (v appeared in EVERY message of
//           a round — in particular in the moving source's, hence it is
//           known to everybody and line 15's all-rounds union keeps it
//           everywhere forever, Lemmas 8–9).
//   get():  return PROPOSED immediately (non-blocking).
//
// Note line 15 unions over the messages of ALL rounds 1..k_i — unlike the
// consensus algorithms, late deliveries do count here.
//
// `MsWeakSetAutomaton` is the GIRAF automaton; `MsWeakSetHarness` runs n of
// them on a LockstepNet under an environment schedule, injects a scripted
// workload of add/get operations, tracks blocking-add completions, and
// emits timestamped WsOpRecords for the specification checker.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "common/value.hpp"
#include "env/generate.hpp"
#include "env/validate.hpp"
#include "weakset/weak_set.hpp"
#include "weakset/ws_backend.hpp"
#include "giraf/automaton.hpp"
#include "net/lockstep.hpp"

namespace anon {

class MsWeakSetAutomaton final : public Automaton<ValueSet> {
 public:
  MsWeakSetAutomaton() = default;

  ValueSet initialize() override;
  ValueSet compute(Round k, const Inboxes<ValueSet>& inboxes) override;

  // Operation inputs (driven by the harness / application layer).
  void start_add(Value v);         // non-reentrant: one add at a time
  bool add_blocked() const { return block_; }
  const ValueSet& get() const { return proposed_; }

  const ValueSet& written() const { return written_; }

  // Cohort hooks: processes that issued the same operations and saw the
  // same rounds are equivalent — Algorithm 4's compute is pure set algebra
  // (intersection for WRITTEN, union for PROPOSED), so duplicating a
  // member's message m times changes neither; multiplicity only weights
  // the engine-side delivery metrics.
  std::uint64_t state_digest() const override;
  bool state_equals(const Automaton<ValueSet>& other) const override;
  std::unique_ptr<Automaton<ValueSet>> clone_state() const override {
    return std::make_unique<MsWeakSetAutomaton>(*this);
  }

 private:
  Value val_ = Value::Bottom();
  ValueSet proposed_;
  ValueSet written_;
  bool block_ = false;
};

// A scripted workload operation.
struct WsScriptOp {
  Round round;        // injected while the process is in this round
  std::size_t process;
  bool is_add;
  Value value;        // for adds
};

struct MsWeakSetRunResult {
  std::vector<WsOpRecord> records;  // timestamped ops (checker input)
  bool all_adds_completed = true;
  Round rounds_executed = 0;
  std::uint64_t add_latency_rounds_total = 0;  // summed over completed adds
  std::size_t adds = 0;
  EnvCheckResult env_check;
  // Cohort backend only: final / peak equivalence-class counts.
  std::size_t cohort_classes = 0;
  std::size_t cohort_peak_classes = 0;
};

// Runs Algorithm 4 under `env`/`crashes` with the given script on the
// selected backend (ws_backend.hpp); executes `opt.extra_rounds` beyond
// the last scripted round (so trailing adds can complete).  Timestamps:
// round*4+1 = injection phase, round*4+3 = completion/observation phase.
MsWeakSetRunResult run_ms_weak_set(const EnvParams& env,
                                   const CrashPlan& crashes,
                                   std::vector<WsScriptOp> script,
                                   const WsRunOptions& opt);

// Expanded-backend shorthand (the original signature).
MsWeakSetRunResult run_ms_weak_set(const EnvParams& env,
                                   const CrashPlan& crashes,
                                   std::vector<WsScriptOp> script,
                                   Round extra_rounds = 50,
                                   bool validate_env = true);

}  // namespace anon
