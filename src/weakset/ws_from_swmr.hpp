// Proposition 2 — with a KNOWN set of processes (IDs and count), a
// weak-set is implementable from single-writer multi-reader registers.
//
// Construction: process i owns SWMR register R_i holding the set of values
// it has added.  add(v): S_i := S_i ∪ {v}; write R_i (one atomic step) —
// once the write returns, any later get's read of R_i sees v.  get():
// read R_0 … R_{n−1} (n atomic steps) and return the union.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/value.hpp"
#include "shm/register_sim.hpp"
#include "weakset/weak_set.hpp"

namespace anon {

class WsFromSwmr {
 public:
  explicit WsFromSwmr(std::size_t n)
      : n_(n), mem_(n, ValueSet{}), local_(n) {}

  std::size_t n() const { return n_; }

  // One-step add op for process `pid`.
  std::unique_ptr<StepOp> make_add(std::size_t pid, Value v);
  // n-step get op; the result is written into *out on completion.
  std::unique_ptr<StepOp> make_get(std::size_t pid, ValueSet* out);

 private:
  std::size_t n_;
  SharedMemory<ValueSet> mem_;
  std::vector<ValueSet> local_;  // S_i
};

// Workload runner: a scripted mix of adds/gets under a seeded adversarial
// interleaving; returns timestamped records for check_weak_set_spec.
struct ShmWsScriptOp {
  std::uint64_t at_tick;
  std::size_t process;
  bool is_add;
  Value value;
};

std::vector<WsOpRecord> run_ws_from_swmr(std::size_t n,
                                         const std::vector<ShmWsScriptOp>& script,
                                         std::uint64_t seed);

}  // namespace anon
