// Backend selection for the Algorithm-4 harnesses (weak-set and the
// Proposition-1 register over it).
//
// `kExpanded` drives one GirafProcess per index on a LockstepNet — the
// reference execution, the only one that records a per-process trace (so
// env validation requires it).  `kCohort` drives a CohortNet: every
// process starts in the same state (Algorithm 4 has no initial values), so
// the whole system begins as ONE equivalence class and only the scripted
// operations and delivery asymmetries split it.  Reports are byte-identical
// across backends and across every thread/shard count — the harness loop
// is shared and the engines' stop callbacks fire at the same round points
// (tests/weakset_cohort_test.cpp pins this field-by-field).
//
// Observation discipline for crashed processes: the expanded engine keeps
// a dead process's automaton frozen at its final compute; the cohort
// engine serves the same reads from a death-time clone
// (CohortNet::automaton_view), so in-flight-add polling agrees even when
// an adder crashes mid-operation.
#pragma once

#include <cstddef>

#include "env/faults.hpp"
#include "giraf/types.hpp"

namespace anon {

enum class WsBackend { kExpanded, kCohort };

// Options shared by run_ms_weak_set and run_register_over_ms.
struct WsRunOptions {
  // Rounds to execute beyond the last scripted round (trailing blocking
  // operations need slack to complete).
  Round extra_rounds = 50;
  // Certify the emitted trace against the MS environment definition.
  // Expanded backend only: the cohort engine records no trace (a trace is
  // exactly the per-index expansion it exists to avoid), so backend=cohort
  // requires validate_env=false.
  bool validate_env = true;
  WsBackend backend = WsBackend::kExpanded;
  // Worker-pool participants (0 = one per hardware thread) and shard count
  // (0 = one per participant), forwarded to either engine.  Results are
  // byte-identical at any value.
  std::size_t engine_threads = 1;
  std::size_t engine_shards = 0;
  // Link-fault plan (env/faults.hpp), inactive by default.  Both backends
  // honour it: fates are pure in (round, sender, receiver), so the cohort
  // engine degrades by splitting classes, never by approximating.
  FaultParams faults;
};

}  // namespace anon
