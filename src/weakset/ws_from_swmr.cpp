#include "weakset/ws_from_swmr.hpp"

namespace anon {

namespace {

class AddOp final : public StepOp {
 public:
  AddOp(SharedMemory<ValueSet>* mem, ValueSet* local, std::size_t pid, Value v)
      : mem_(mem), local_(local), pid_(pid), v_(v) {}
  bool step() override {
    local_->insert(v_);
    // The single atomic write; copy-assignment reuses R_i's capacity.
    mem_->write_from(pid_, *local_);
    return true;
  }

 private:
  SharedMemory<ValueSet>* mem_;
  ValueSet* local_;
  std::size_t pid_;
  Value v_;
};

class GetOp final : public StepOp {
 public:
  GetOp(SharedMemory<ValueSet>* mem, ValueSet* out)
      : mem_(mem), out_(out) {}
  bool step() override {
    // One merge pass straight out of the register cell — the seed version
    // copied the cell, then re-inserted element by element (each insert an
    // O(|out|) memmove).
    out_->union_with(mem_->view(next_));
    ++next_;
    return next_ == mem_->size();
  }

 private:
  SharedMemory<ValueSet>* mem_;
  ValueSet* out_;
  std::size_t next_ = 0;
};

}  // namespace

std::unique_ptr<StepOp> WsFromSwmr::make_add(std::size_t pid, Value v) {
  ANON_CHECK(pid < n_);
  return std::make_unique<AddOp>(&mem_, &local_[pid], pid, v);
}

std::unique_ptr<StepOp> WsFromSwmr::make_get(std::size_t pid, ValueSet* out) {
  ANON_CHECK(pid < n_);
  return std::make_unique<GetOp>(&mem_, out);
}

std::vector<WsOpRecord> run_ws_from_swmr(
    std::size_t n, const std::vector<ShmWsScriptOp>& script,
    std::uint64_t seed) {
  WsFromSwmr ws(n);
  StepScheduler sched(seed);
  std::vector<WsOpRecord> records(script.size());
  // Get results must outlive the scheduler run; presized once so element
  // addresses are stable (no per-get unique_ptr).
  std::vector<ValueSet> outs(script.size());

  for (std::size_t i = 0; i < script.size(); ++i) {
    const ShmWsScriptOp& op = script[i];
    records[i].process = op.process;
    records[i].start = op.at_tick;
    if (op.is_add) {
      records[i].kind = WsOpRecord::Kind::kAdd;
      records[i].value = op.value;
      sched.inject(op.at_tick, ws.make_add(op.process, op.value),
                   [&records, i](std::uint64_t end) { records[i].end = end; });
    } else {
      records[i].kind = WsOpRecord::Kind::kGet;
      ValueSet* out = &outs[i];
      sched.inject(op.at_tick, ws.make_get(op.process, out),
                   [&records, i, out](std::uint64_t end) {
                     records[i].end = end;
                     records[i].result = std::move(*out);
                   });
    }
  }
  sched.run();
  return records;
}

}  // namespace anon
