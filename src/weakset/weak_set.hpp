// The weak-set shared data structure (§5, after Delporte-Gallet &
// Fauconnier [4]).
//
// A weak-set S holds a set of values and offers two operations:
//   * addS(v) — adds v (no removal exists),
//   * getS()  — returns a subset of the values in S such that
//       - every value whose add COMPLETED before the get STARTED is
//         returned, and
//       - no value whose add had NOT STARTED before the get ended is
//         returned;
//       adds concurrent with the get may or may not be visible.
// Weak-sets are not necessarily linearizable, which is exactly what makes
// them implementable in unknown/anonymous networks: unlike a register,
// adding never overwrites and needs no identity.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/value.hpp"

namespace anon {

// Timestamped operation records; `start`/`end` come from whatever virtual
// clock the harness uses (lock-step phases, driver steps, …) — the spec
// only needs the happens-before order they induce.
struct WsOpRecord {
  enum class Kind { kAdd, kGet };
  Kind kind;
  Value value;      // the added value (kAdd)
  ValueSet result;  // the returned set (kGet)
  std::uint64_t start = 0;
  std::uint64_t end = 0;
  std::size_t process = 0;  // informational (diagnostics only)
};

struct WsCheckResult {
  bool ok = true;
  std::string violation;  // human-readable description of the first failure
};

// Validates a whole history of operations against the weak-set spec.
WsCheckResult check_weak_set_spec(const std::vector<WsOpRecord>& ops);

}  // namespace anon
