// Reference (executable-specification) implementations of the history
// checkers, kept verbatim from the seed.
//
// `check_weak_set_spec` and `check_regular_register` were rewritten as
// sort-plus-sweep passes (O(ops log ops)); these are the original
// brute-force versions — O(gets·adds + gets·|result|·ops) and
// O(reads·writes²) — whose correctness is obvious from the spec text.
// They exist to be *disagreed with*: tests/spec_sweep_test.cpp pits the
// sweep checkers against them on randomized histories and on histories
// engineered to contain violations, and the E4/E7 benches time the two
// sides interleaved (the committed BENCH_E4/E7 speedup baseline).  Do not
// optimize these.
#pragma once

#include <vector>

#include "weakset/weak_set.hpp"
#include "weakset/ws_register.hpp"

namespace anon {

WsCheckResult ref_check_weak_set_spec(const std::vector<WsOpRecord>& ops);
RegCheckResult ref_check_regular_register(const std::vector<RegOpRecord>& ops);

}  // namespace anon
