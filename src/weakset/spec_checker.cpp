#include <sstream>

#include "weakset/weak_set.hpp"

namespace anon {

WsCheckResult check_weak_set_spec(const std::vector<WsOpRecord>& ops) {
  WsCheckResult res;
  for (const WsOpRecord& get : ops) {
    if (get.kind != WsOpRecord::Kind::kGet) continue;
    // (1) Every add completed before the get started must be visible.
    for (const WsOpRecord& add : ops) {
      if (add.kind != WsOpRecord::Kind::kAdd) continue;
      if (add.end < get.start && get.result.count(add.value) == 0) {
        std::ostringstream os;
        os << "get@[" << get.start << "," << get.end << ") by p"
           << get.process << " missed value " << add.value.to_string()
           << " whose add by p" << add.process << " completed at " << add.end;
        return {false, os.str()};
      }
    }
    // (2) No value may appear out of thin air: some add of it must have
    // started before the get ended.
    for (const Value& v : get.result) {
      bool justified = false;
      for (const WsOpRecord& add : ops) {
        if (add.kind == WsOpRecord::Kind::kAdd && add.value == v &&
            add.start <= get.end) {
          justified = true;
          break;
        }
      }
      if (!justified) {
        std::ostringstream os;
        os << "get@[" << get.start << "," << get.end << ") by p"
           << get.process << " returned value " << v.to_string()
           << " with no add started before the get ended";
        return {false, os.str()};
      }
    }
  }
  return res;
}

}  // namespace anon
