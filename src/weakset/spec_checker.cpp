// Sort-plus-sweep weak-set history checker.
//
// The seed implementation re-scanned every add per get (gets × adds) and
// every op per returned value (gets × |result| × ops).  Two observations
// make one pass suffice:
//
//  * Condition (1) — "every add completed before the get started is
//    visible" — only depends, per VALUE, on the earliest completion time
//    of any add of that value.  Sweeping the gets in start order against
//    the values in first-completion order maintains the exact must-be-
//    visible set behind a watermark cursor; each get then verifies
//    membership of that set in its (sorted) result.
//  * Condition (2) — "no value out of thin air" — only depends, per value,
//    on the earliest START of any add of that value: one interned-table
//    lookup per returned value.
//
// Total cost: O(ops log ops) for the sorts plus membership work linear in
// the history's returned sets (× a binary-search log) — against the seed's
// product terms.  The seed checker is preserved as ref_check_weak_set_spec
// (reference_checkers.hpp); tests/spec_sweep_test.cpp proves agreement on
// randomized and deliberately-violating histories, and BENCH_E4/E7 track
// the measured gap.  When a history violates the spec, the reported
// offending GET is the same one the reference picks (the first in record
// order, visibility checked before thin-air); the witness VALUE inside
// that get may differ when several are wrong at once.
#include <algorithm>
#include <cstdint>
#include <limits>
#include <sstream>
#include <vector>

#include "weakset/weak_set.hpp"

namespace anon {

namespace {

constexpr std::uint64_t kNever = std::numeric_limits<std::uint64_t>::max();

struct ValueStats {
  Value value;
  std::uint64_t first_start = kNever;  // earliest add start
  std::uint64_t first_end = kNever;    // earliest add completion
  std::size_t witness_process = 0;     // adder achieving first_end
};

}  // namespace

WsCheckResult check_weak_set_spec(const std::vector<WsOpRecord>& ops) {
  // --- Intern the added values and their per-value time bounds. ---------
  std::vector<ValueStats> values;
  values.reserve(ops.size());
  for (const WsOpRecord& op : ops)
    if (op.kind == WsOpRecord::Kind::kAdd) values.push_back({op.value});
  std::sort(values.begin(), values.end(),
            [](const ValueStats& a, const ValueStats& b) {
              return a.value < b.value;
            });
  values.erase(std::unique(values.begin(), values.end(),
                           [](const ValueStats& a, const ValueStats& b) {
                             return a.value == b.value;
                           }),
               values.end());
  auto find_value = [&values](const Value& v) -> ValueStats* {
    auto it = std::lower_bound(values.begin(), values.end(), v,
                               [](const ValueStats& s, const Value& key) {
                                 return s.value < key;
                               });
    return (it != values.end() && it->value == v) ? &*it : nullptr;
  };
  for (const WsOpRecord& op : ops) {
    if (op.kind != WsOpRecord::Kind::kAdd) continue;
    ValueStats* s = find_value(op.value);
    s->first_start = std::min(s->first_start, op.start);
    if (op.end < s->first_end) {
      s->first_end = op.end;
      s->witness_process = op.process;
    }
  }

  // --- Index the gets. --------------------------------------------------
  std::vector<std::size_t> gets;  // indices into ops
  for (std::size_t i = 0; i < ops.size(); ++i)
    if (ops[i].kind == WsOpRecord::Kind::kGet) gets.push_back(i);
  if (gets.empty()) return {};

  // A violation per get, if any; the final report picks the first get in
  // record order, condition (1) before condition (2) — mirroring the
  // reference checker's scan order.
  enum class Viol : std::uint8_t { kNone, kMissed, kThinAir };
  std::vector<Viol> viol(ops.size(), Viol::kNone);
  std::vector<Value> viol_value(ops.size());

  // --- Condition (2): thin-air values, one table lookup each. -----------
  for (std::size_t gi : gets) {
    const WsOpRecord& get = ops[gi];
    for (const Value& v : get.result) {
      const ValueStats* s = find_value(v);
      if (s == nullptr || s->first_start > get.end) {
        viol[gi] = Viol::kThinAir;
        viol_value[gi] = v;
        break;
      }
    }
  }

  // --- Condition (1): completed-add watermark sweep. --------------------
  // Values ordered by first completion; gets ordered by start.  Advancing
  // the watermark grows the must-be-visible list monotonically.
  std::vector<const ValueStats*> by_first_end;
  by_first_end.reserve(values.size());
  for (const ValueStats& s : values)
    if (s.first_end != kNever) by_first_end.push_back(&s);
  std::sort(by_first_end.begin(), by_first_end.end(),
            [](const ValueStats* a, const ValueStats* b) {
              return a->first_end < b->first_end;
            });
  std::vector<std::size_t> gets_by_start = gets;
  std::sort(gets_by_start.begin(), gets_by_start.end(),
            [&ops](std::size_t a, std::size_t b) {
              return ops[a].start < ops[b].start;
            });
  std::size_t watermark = 0;
  for (std::size_t gi : gets_by_start) {
    const WsOpRecord& get = ops[gi];
    while (watermark < by_first_end.size() &&
           by_first_end[watermark]->first_end < get.start)
      ++watermark;
    // Every value below the watermark must appear in this get's result.
    for (std::size_t v = 0; v < watermark; ++v) {
      if (get.result.count(by_first_end[v]->value) == 0) {
        viol[gi] = Viol::kMissed;  // overrides a thin-air mark: (1) first
        viol_value[gi] = by_first_end[v]->value;
        break;
      }
    }
  }

  // --- Report the first offending get in record order. ------------------
  for (std::size_t gi : gets) {
    if (viol[gi] == Viol::kNone) continue;
    const WsOpRecord& get = ops[gi];
    std::ostringstream os;
    if (viol[gi] == Viol::kMissed) {
      const ValueStats* s = find_value(viol_value[gi]);
      os << "get@[" << get.start << "," << get.end << ") by p" << get.process
         << " missed value " << viol_value[gi].to_string()
         << " whose add by p" << s->witness_process << " completed at "
         << s->first_end;
    } else {
      os << "get@[" << get.start << "," << get.end << ") by p" << get.process
         << " returned value " << viol_value[gi].to_string()
         << " with no add started before the get ended";
    }
    return {false, os.str()};
  }
  return {};
}

}  // namespace anon
