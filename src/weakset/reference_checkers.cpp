#include "weakset/reference_checkers.hpp"

#include <set>
#include <sstream>

namespace anon {

WsCheckResult ref_check_weak_set_spec(const std::vector<WsOpRecord>& ops) {
  WsCheckResult res;
  for (const WsOpRecord& get : ops) {
    if (get.kind != WsOpRecord::Kind::kGet) continue;
    // (1) Every add completed before the get started must be visible.
    for (const WsOpRecord& add : ops) {
      if (add.kind != WsOpRecord::Kind::kAdd) continue;
      if (add.end < get.start && get.result.count(add.value) == 0) {
        std::ostringstream os;
        os << "get@[" << get.start << "," << get.end << ") by p"
           << get.process << " missed value " << add.value.to_string()
           << " whose add by p" << add.process << " completed at " << add.end;
        return {false, os.str()};
      }
    }
    // (2) No value may appear out of thin air: some add of it must have
    // started before the get ended.
    for (const Value& v : get.result) {
      bool justified = false;
      for (const WsOpRecord& add : ops) {
        if (add.kind == WsOpRecord::Kind::kAdd && add.value == v &&
            add.start <= get.end) {
          justified = true;
          break;
        }
      }
      if (!justified) {
        std::ostringstream os;
        os << "get@[" << get.start << "," << get.end << ") by p"
           << get.process << " returned value " << v.to_string()
           << " with no add started before the get ended";
        return {false, os.str()};
      }
    }
  }
  return res;
}

RegCheckResult ref_check_regular_register(const std::vector<RegOpRecord>& ops) {
  auto precedes = [](const RegOpRecord& a, const RegOpRecord& b) {
    return a.end < b.start;
  };
  for (const RegOpRecord& r : ops) {
    if (r.kind != RegOpRecord::Kind::kRead) continue;
    // Valid sources: writes started before the read ended and not strictly
    // superseded by another write that completed before the read started.
    bool initial_ok = true;  // reading ⊥/initial is fine iff no write ≺ read
    std::set<std::optional<Value>> valid;
    for (const RegOpRecord& w : ops) {
      if (w.kind != RegOpRecord::Kind::kWrite) continue;
      if (precedes(w, r)) initial_ok = false;
      if (w.start > r.end) continue;
      bool superseded = false;
      for (const RegOpRecord& w2 : ops) {
        if (w2.kind != RegOpRecord::Kind::kWrite) continue;
        if (precedes(w, w2) && precedes(w2, r)) {
          superseded = true;
          break;
        }
      }
      if (!superseded) valid.insert(w.value);
    }
    if (initial_ok) valid.insert(std::nullopt);
    if (valid.count(r.value) == 0) {
      std::ostringstream os;
      os << "read@[" << r.start << "," << r.end << ") by p" << r.process
         << " returned "
         << (r.value ? r.value->to_string() : std::string("⊥"))
         << " which is neither a current nor a concurrent write";
      return {false, os.str()};
    }
  }
  return {};
}

}  // namespace anon
