// Contiguous balanced shard partitions, shared by the round engines.
//
// Both engines partition an index space [0, count) into at most `shards`
// contiguous ranges and fan the ranges out over the worker pool.  The
// partition is an identity decision, never an observable one: every
// order-sensitive fold replays serially in index order at the barriers, so
// ANY contiguous cover of [0, count) yields byte-identical results.  That
// freedom is what lets the cohort engine weight-balance by class size —
// a collapsed run is a few huge classes plus singleton stragglers, and an
// equal-width partition parks the whole O(n) membership work on one worker
// (the ROADMAP's "wasted workers on skewed class sizes").
//
// The greedy rule: shard s takes items until it reaches
// ceil(remaining_weight / remaining_shards), always taking at least one
// item and always leaving one per later shard.  For uniform weights this
// reproduces the classic base/rem layout exactly (the first count % shards
// ranges are one item wider) — LockstepNet relies on that to keep its
// two-branch arithmetic shard_of() lookup valid.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace anon {

using ShardRange = std::pair<std::size_t, std::size_t>;

// Weight-balanced contiguous partition: item i costs weight(i) (a
// non-negative integer).  Produces min(shards, max(count, 1)) ranges
// covering [0, count), each non-empty when count >= shards.  Fills the
// caller's vector in place (capacity-retaining — the engines call this
// every round on the steady-state path).
template <typename WeightFn>
void balanced_ranges_weighted(std::size_t count, std::size_t shards,
                              WeightFn&& weight, std::vector<ShardRange>* out) {
  shards = std::clamp<std::size_t>(shards, 1, std::max<std::size_t>(count, 1));
  out->resize(shards);
  std::uint64_t remaining = 0;
  for (std::size_t i = 0; i < count; ++i)
    remaining += static_cast<std::uint64_t>(weight(i));
  std::size_t at = 0;
  for (std::size_t s = 0; s < shards; ++s) {
    const std::size_t left = shards - s;
    const std::uint64_t target = (remaining + left - 1) / left;
    const std::size_t begin = at;
    std::uint64_t w = 0;
    while (at < count) {
      if (at > begin) {
        // The final shard always drains the tail (a zero-weight suffix
        // would otherwise satisfy the target without being covered).
        if (w >= target && left > 1) break;
        if (count - at < left) break;  // leave one item per later shard
      }
      w += static_cast<std::uint64_t>(weight(at));
      ++at;
    }
    remaining -= w;
    (*out)[s] = {begin, at};
  }
}

// Uniform weights: exactly the base/rem layout (first count % shards
// ranges one wider), via the same greedy rule.
inline void balanced_ranges(std::size_t count, std::size_t shards,
                            std::vector<ShardRange>* out) {
  balanced_ranges_weighted(
      count, shards, [](std::size_t) { return std::uint64_t{1}; }, out);
}

}  // namespace anon
