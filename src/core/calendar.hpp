// The shared scheduling substrate for both execution engines (see
// DESIGN.md, "core layer").
//
// A `RoundCalendar<T>` is a ring-buffer calendar queue: items are bucketed
// by an absolute uint64 key (an engine round for the lock-step net, a
// virtual time for the discrete-event net).  Keys within the current
// window [base, base + buckets) land directly in their ring slot — O(1)
// schedule and O(1) take — while far-future outliers wait in an ordered
// overflow map and migrate into the ring as the window advances.  Items
// sharing a key keep their scheduling order (FIFO), which is what makes
// runs bit-reproducible.
//
// This replaces two private schedulers: the `std::map<Round, vector>`
// pending queue that used to live in `LockstepNet` (O(log r) per insert,
// node allocation per round) and the `std::priority_queue` in
// `EventQueue` (O(log e) per event, comparator churn on every pop).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "common/check.hpp"

namespace anon {

template <typename T>
class RoundCalendar {
 public:
  // `min_buckets` sizes the ring window; it is rounded up to a power of
  // two.  Keys beyond the window are still accepted (overflow map).
  explicit RoundCalendar(std::size_t min_buckets = 64) {
    std::size_t cap = 1;
    while (cap < min_buckets) cap <<= 1;
    wheel_.resize(cap);
  }

  // Start of the current window: the only key items can be taken from.
  std::uint64_t base() const { return base_; }

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }

  void schedule(std::uint64_t key, T item) {
    ANON_CHECK_MSG(key >= base_, "cannot schedule into the past");
    ++size_;
    if (key - base_ < wheel_.size()) {
      wheel_[slot(key)].push_back(std::move(item));
      ++in_wheel_;
    } else {
      overflow_.emplace(key, std::move(item));
    }
  }

  // Smallest key holding a pending item, if any.  Ring items always
  // precede overflow items (overflow keys lie beyond the window).
  std::optional<std::uint64_t> next_key() const {
    if (in_wheel_ > 0) {
      for (std::uint64_t off = 0; off < wheel_.size(); ++off)
        if (!wheel_[slot(base_ + off)].empty()) return base_ + off;
    }
    if (!overflow_.empty()) return overflow_.begin()->first;
    return std::nullopt;
  }

  // Moves the window start forward to `key`.  Every slot passed over must
  // be empty — callers advance to the next due key, never beyond one.
  void advance_to(std::uint64_t key) {
    ANON_CHECK(key >= base_);
    if (in_wheel_ > 0) {
      ANON_CHECK_MSG(key - base_ < wheel_.size(),
                     "advanced past the whole window with items pending");
      for (std::uint64_t k = base_; k < key; ++k)
        ANON_CHECK_MSG(wheel_[slot(k)].empty(), "skipped a due bucket");
    }
    base_ = key;
    // Pull overflow items that now fit the window.  An overflow item never
    // lands behind a directly-scheduled one with the same key: direct
    // scheduling at that key only becomes possible after this migration.
    while (!overflow_.empty() &&
           overflow_.begin()->first - base_ < wheel_.size()) {
      auto node = overflow_.extract(overflow_.begin());
      wheel_[slot(node.key())].push_back(std::move(node.mapped()));
      ++in_wheel_;
    }
  }

  // Removes and returns every item due exactly at base(), in scheduling
  // order.
  std::vector<T> take_due() {
    std::vector<T> out;
    take_due_into(out);
    return out;
  }

  // Like take_due(), but recycles the caller's buffer: `out` is cleared,
  // then swapped with the due bucket, so the bucket inherits out's old
  // capacity.  A caller that feeds its previous batch back in here keeps
  // capacity circulating between its batch buffer and the ring slots —
  // the event loop stops allocating once every touched slot is warm.
  void take_due_into(std::vector<T>& out) {
    out.clear();
    auto& bucket = wheel_[slot(base_)];
    out.swap(bucket);
    in_wheel_ -= out.size();
    size_ -= out.size();
  }

 private:
  std::size_t slot(std::uint64_t key) const {
    return static_cast<std::size_t>(key & (wheel_.size() - 1));
  }

  std::vector<std::vector<T>> wheel_;
  std::multimap<std::uint64_t, T> overflow_;  // keys >= base_ + wheel size
  std::uint64_t base_ = 0;
  std::size_t size_ = 0;
  std::size_t in_wheel_ = 0;
};

}  // namespace anon
