// Persistent worker pool shared by every parallel surface in the repo
// (see DESIGN.md, "core layer").
//
// Two clients share the pool: grid sweeps (`parallel_sweep`, one cell per
// index) and intra-run shard waves (`LockstepNet` with engine_threads > 1,
// one shard per index).  A single process-wide pool, sized once and reused
// across calls, replaces the old spawn-threads-per-sweep pattern and makes
// the no-oversubscription rule structural: a `parallel_for` issued from
// *inside* a pool job runs inline on the calling thread, so a sweep whose
// cells each shard their run never stacks parallelism on parallelism.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace anon {

class WorkerPool {
 public:
  // A pool with `workers` persistent worker threads.  Callers participate
  // in their own jobs, so `workers = cores - 1` saturates the machine.
  explicit WorkerPool(std::size_t workers);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  // The process-wide pool, created on first use with
  // max(1, hardware_concurrency - 1) workers.  Grows on demand when a
  // caller asks for more participants than it holds, so explicitly
  // requested thread counts (tests, --threads flags) are honoured even on
  // small machines.
  static WorkerPool& shared();

  std::size_t workers() const;

  // Runs body(i) for every i in [0, count), the participants racing down a
  // shared atomic cursor.  The calling thread participates; at most
  // `max_participants` threads (caller included) execute the body — 0
  // means "caller plus every pool worker".  Blocks until all indices ran.
  // The first exception thrown by any index cancels the remaining indices
  // and is rethrown on the calling thread after the job drains.
  //
  // Determinism contract: body(i) must only write state owned by index i;
  // under that contract the results are identical for any participant
  // count or OS schedule.
  //
  // Re-entrancy: a call from a thread already executing a pool job runs
  // the whole loop inline (no workers recruited) — the outer job already
  // owns the pool's parallelism.  Distinct top-level callers are
  // serialized: a second job waits until the first finishes.
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& body,
                    std::size_t max_participants = 0);

  // Deterministic map-reduce on top of parallel_for: computes
  // body(i) -> R for every index in parallel, then folds the results
  // *in index order* on the calling thread — so non-commutative or
  // rounding-sensitive combines still give schedule-independent answers.
  // `scratch` is caller-owned so hot loops reach a zero-allocation steady
  // state (it is resized to `count` and overwritten).
  template <typename R, typename Body, typename Combine>
  R parallel_reduce(std::size_t count, R init, std::vector<R>& scratch,
                    const Body& body, const Combine& combine,
                    std::size_t max_participants = 0) {
    if (count == 0) return init;
    scratch.resize(count);
    std::vector<R>* out = &scratch;
    const Body* fn = &body;
    parallel_for(
        count, [out, fn](std::size_t i) { (*out)[i] = (*fn)(i); },
        max_participants);
    R acc = std::move(init);
    for (std::size_t i = 0; i < count; ++i)
      acc = combine(std::move(acc), (*out)[i]);
    return acc;
  }

 private:
  struct Job;

  void worker_loop();
  void ensure_workers_locked(std::size_t wanted);
  static void run_in(Job& job);

  mutable std::mutex mu_;
  std::condition_variable work_cv_;    // workers: a job has open slots / stop
  std::condition_variable done_cv_;    // submitter: last participant left
  std::condition_variable submit_cv_;  // next submitter: pool is free
  std::vector<std::thread> threads_;
  Job* job_ = nullptr;  // the active job (one at a time)
  bool stopping_ = false;
};

}  // namespace anon
