// Sharded parallel experiment runner (see DESIGN.md, "core layer").
//
// Every bench/experiment in this repo is a grid of independent simulations
// — (seed × config) cells — whose per-cell work is a pure function of its
// inputs (all simulations are seeded and allocate their own nets, arenas
// and RNGs).  `parallel_sweep` shards such a grid across the shared
// `WorkerPool` with an atomic cursor and writes each result into its own
// index, so the returned vector is identical for any thread count or OS
// schedule: aggregation stays deterministic while the wall clock drops
// with cores.  Threads are pooled, not spawned per sweep, and a sweep
// issued from inside another pool job (a sweep cell that itself shards its
// run, or a nested sweep) runs inline — no oversubscription.
#pragma once

#include <cstddef>
#include <type_traits>
#include <vector>

#include "core/worker_pool.hpp"

namespace anon {

struct SweepOptions {
  std::size_t threads = 0;           // 0 = one per hardware thread
  std::size_t min_items_per_thread = 1;  // don't over-shard tiny grids
};

// Resolved worker count: `requested`, or the hardware concurrency when
// `requested` is 0 (at least 1 either way).
std::size_t resolve_sweep_threads(std::size_t requested);

// Runs fn(i) for every i in [0, count) and returns the results indexed by
// i.  `fn` must be thread-safe across distinct indices; results must be
// default-constructible (they are written into a presized vector).  The
// first exception thrown by any cell aborts the remaining work and is
// rethrown on the calling thread.
template <typename Fn>
auto parallel_sweep(std::size_t count, Fn&& fn, SweepOptions opt = {})
    -> std::vector<std::decay_t<decltype(fn(std::size_t{0}))>> {
  using R = std::decay_t<decltype(fn(std::size_t{0}))>;
  static_assert(std::is_default_constructible_v<R>,
                "sweep results are written into a presized vector");
  static_assert(!std::is_same_v<R, bool>,
                "std::vector<bool> bit-packs elements: concurrent writes "
                "would race — return an int/char instead");
  std::vector<R> results(count);
  if (count == 0) return results;

  const std::size_t per_thread =
      opt.min_items_per_thread == 0 ? 1 : opt.min_items_per_thread;
  std::size_t threads = resolve_sweep_threads(opt.threads);
  threads = std::min(threads, (count + per_thread - 1) / per_thread);

  if (threads <= 1) {
    for (std::size_t i = 0; i < count; ++i) results[i] = fn(i);
    return results;
  }

  WorkerPool::shared().parallel_for(
      count, [&](std::size_t i) { results[i] = fn(i); }, threads);
  return results;
}

}  // namespace anon
