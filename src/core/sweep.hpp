// Sharded parallel experiment runner (see DESIGN.md, "core layer").
//
// Every bench/experiment in this repo is a grid of independent simulations
// — (seed × config) cells — whose per-cell work is a pure function of its
// inputs (all simulations are seeded and allocate their own nets, arenas
// and RNGs).  `parallel_sweep` shards such a grid across worker threads
// with a shared atomic cursor and writes each result into its own index,
// so the returned vector is identical for any thread count or OS schedule:
// aggregation stays deterministic while the wall clock drops with cores.
#pragma once

#include <atomic>
#include <cstddef>
#include <exception>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace anon {

struct SweepOptions {
  std::size_t threads = 0;           // 0 = one per hardware thread
  std::size_t min_items_per_thread = 1;  // don't over-spawn on tiny grids
};

// Resolved worker count: `requested`, or the hardware concurrency when
// `requested` is 0 (at least 1 either way).
std::size_t resolve_sweep_threads(std::size_t requested);

// Runs fn(i) for every i in [0, count) and returns the results indexed by
// i.  `fn` must be thread-safe across distinct indices; results must be
// default-constructible (they are written into a presized vector).  The
// first exception thrown by any cell aborts the remaining work and is
// rethrown on the calling thread.
template <typename Fn>
auto parallel_sweep(std::size_t count, Fn&& fn, SweepOptions opt = {})
    -> std::vector<std::decay_t<decltype(fn(std::size_t{0}))>> {
  using R = std::decay_t<decltype(fn(std::size_t{0}))>;
  static_assert(std::is_default_constructible_v<R>,
                "sweep results are written into a presized vector");
  static_assert(!std::is_same_v<R, bool>,
                "std::vector<bool> bit-packs elements: concurrent writes "
                "would race — return an int/char instead");
  std::vector<R> results(count);
  if (count == 0) return results;

  const std::size_t per_thread =
      opt.min_items_per_thread == 0 ? 1 : opt.min_items_per_thread;
  std::size_t threads = resolve_sweep_threads(opt.threads);
  threads = std::min(threads, (count + per_thread - 1) / per_thread);

  if (threads <= 1) {
    for (std::size_t i = 0; i < count; ++i) results[i] = fn(i);
    return results;
  }

  std::atomic<std::size_t> next{0};
  std::mutex error_mu;
  std::exception_ptr first_error;
  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        results[i] = fn(i);
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(error_mu);
          if (!first_error) first_error = std::current_exception();
        }
        next.store(count, std::memory_order_relaxed);  // drain the others
        return;
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) pool.emplace_back(worker);
  for (auto& th : pool) th.join();
  if (first_error) std::rethrow_exception(first_error);
  return results;
}

}  // namespace anon
