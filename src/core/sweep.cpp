#include "core/sweep.hpp"

namespace anon {

std::size_t resolve_sweep_threads(std::size_t requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

}  // namespace anon
