#include "core/worker_pool.hpp"

#include <atomic>

namespace anon {

namespace {
// Set while a thread is executing pool-job indices; nested parallel_for
// calls observe it and run inline instead of recruiting workers.
thread_local bool tl_inside_pool_job = false;
}  // namespace

struct WorkerPool::Job {
  const std::function<void(std::size_t)>* body = nullptr;
  std::size_t count = 0;
  std::atomic<std::size_t> next{0};  // the shared work cursor
  std::size_t slots = 0;   // workers still allowed to join (under mu_)
  std::size_t active = 0;  // workers currently inside run_in (under mu_)
  std::mutex error_mu;
  std::exception_ptr error;  // first failure wins
};

WorkerPool::WorkerPool(std::size_t workers) {
  std::lock_guard<std::mutex> lock(mu_);
  ensure_workers_locked(workers);
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

WorkerPool& WorkerPool::shared() {
  static WorkerPool pool([] {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 1 ? static_cast<std::size_t>(hw - 1) : std::size_t{1};
  }());
  return pool;
}

std::size_t WorkerPool::workers() const {
  std::lock_guard<std::mutex> lock(mu_);
  return threads_.size();
}

void WorkerPool::ensure_workers_locked(std::size_t wanted) {
  while (threads_.size() < wanted)
    threads_.emplace_back([this] { worker_loop(); });
}

void WorkerPool::run_in(Job& job) {
  tl_inside_pool_job = true;
  for (;;) {
    const std::size_t i = job.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= job.count) break;
    try {
      (*job.body)(i);
    } catch (...) {
      {
        std::lock_guard<std::mutex> lock(job.error_mu);
        if (!job.error) job.error = std::current_exception();
      }
      job.next.store(job.count, std::memory_order_relaxed);  // cancel the rest
      break;
    }
  }
  tl_inside_pool_job = false;
}

void WorkerPool::worker_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [&] {
      return stopping_ || (job_ != nullptr && job_->slots > 0);
    });
    if (stopping_) return;
    Job& job = *job_;
    --job.slots;
    ++job.active;
    lock.unlock();
    run_in(job);
    lock.lock();
    --job.active;
    if (job.active == 0) done_cv_.notify_all();
  }
}

void WorkerPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& body,
                              std::size_t max_participants) {
  if (count == 0) return;
  if (count == 1 || max_participants == 1 || tl_inside_pool_job) {
    // Serial request, or a nested call from inside a pool job: the outer
    // job owns the pool's parallelism, so run inline.
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }

  Job job;
  job.body = &body;
  job.count = count;

  std::unique_lock<std::mutex> lock(mu_);
  if (max_participants > 1) ensure_workers_locked(max_participants - 1);
  submit_cv_.wait(lock, [&] { return job_ == nullptr; });
  std::size_t extra = threads_.size();  // workers to recruit (caller is +1)
  if (max_participants > 0) extra = std::min(extra, max_participants - 1);
  extra = std::min(extra, count - 1);
  if (extra == 0) {
    lock.unlock();
    run_in(job);
  } else {
    job.slots = extra;
    job_ = &job;
    lock.unlock();
    work_cv_.notify_all();
    run_in(job);
    lock.lock();
    job.slots = 0;  // late wakers must not join a finished job
    job_ = nullptr;
    done_cv_.wait(lock, [&] { return job.active == 0; });
    lock.unlock();
    submit_cv_.notify_one();
  }
  if (job.error) std::rethrow_exception(job.error);
}

}  // namespace anon
