// A per-round bump arena for engine scratch.
//
// Both net engines rebuild the same small hash maps and bucket vectors
// every round (digest buckets for cohort merging, canonical-payload maps
// at shard barriers, receiver partitions for asymmetric delivery).  With
// the general-purpose allocator each of those is a stream of node
// allocations that repeats identically round after round.  `RoundArena`
// replaces them with pointer bumps: blocks are grabbed from the heap the
// first few rounds, then `reset()` rewinds the cursor at the round
// boundary and the steady state allocates nothing at all (this is what
// `allocation_steady_state_test` pins).
//
// Contract:
//  - `allocate` never returns memory to the system until destruction;
//    `reset()` just rewinds.  Every container built on `ArenaAlloc` must
//    therefore be destroyed (or abandoned wholesale — the memory is
//    trivially reclaimed by `reset`) before the next `reset()` call, and
//    never straddle one.
//  - NOT thread-safe.  Arena-backed containers are built and mutated in
//    the serial barrier sections only; parallel shard bodies may *read*
//    arena-backed data that the serial section published, but never
//    allocate from the arena.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <unordered_map>
#include <vector>

#include "common/check.hpp"

namespace anon {

class RoundArena {
 public:
  explicit RoundArena(std::size_t first_block_bytes = 1u << 12)
      : first_block_bytes_(first_block_bytes < 64 ? 64 : first_block_bytes) {}

  RoundArena(const RoundArena&) = delete;
  RoundArena& operator=(const RoundArena&) = delete;

  void* allocate(std::size_t bytes, std::size_t align) {
    ANON_CHECK(align != 0 && (align & (align - 1)) == 0);
    if (bytes == 0) bytes = 1;
    while (true) {
      if (cur_ < blocks_.size()) {
        Block& b = blocks_[cur_];
        const std::uintptr_t base =
            reinterpret_cast<std::uintptr_t>(b.data.get());
        const std::uintptr_t p = (base + off_ + (align - 1)) & ~(align - 1);
        if (p + bytes <= base + b.size) {
          off_ = (p + bytes) - base;
          return reinterpret_cast<void*>(p);
        }
        // Current block exhausted: move to the next retained block (or
        // grow).  Blocks double, so a handful of warm-up rounds converge
        // on a single block that fits the whole round.
        ++cur_;
        off_ = 0;
        continue;
      }
      std::size_t want = blocks_.empty() ? first_block_bytes_
                                         : blocks_.back().size * 2;
      if (want < bytes + align) want = bytes + align;
      blocks_.push_back(Block{std::make_unique<std::byte[]>(want), want});
      // cur_ == blocks_.size() - 1 now satisfiable; loop retries.
    }
  }

  // Rewind to empty, keeping every block for reuse.  All memory handed
  // out since the last reset becomes invalid.
  void reset() {
    cur_ = 0;
    off_ = 0;
  }

  std::size_t bytes_reserved() const {
    std::size_t total = 0;
    for (const Block& b : blocks_) total += b.size;
    return total;
  }

  std::size_t block_count() const { return blocks_.size(); }

 private:
  struct Block {
    std::unique_ptr<std::byte[]> data;
    std::size_t size;
  };

  std::size_t first_block_bytes_;
  std::vector<Block> blocks_;
  std::size_t cur_ = 0;  // index of the block being bumped
  std::size_t off_ = 0;  // bump offset within blocks_[cur_]
};

// Minimal STL allocator over a RoundArena.  `deallocate` is a no-op —
// reclamation is the arena's round-boundary reset.
template <typename T>
class ArenaAlloc {
 public:
  using value_type = T;

  explicit ArenaAlloc(RoundArena* arena) : arena_(arena) {}

  template <typename U>
  ArenaAlloc(const ArenaAlloc<U>& other) : arena_(other.arena()) {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(arena_->allocate(n * sizeof(T), alignof(T)));
  }

  void deallocate(T*, std::size_t) {}

  RoundArena* arena() const { return arena_; }

  template <typename U>
  bool operator==(const ArenaAlloc<U>& other) const {
    return arena_ == other.arena();
  }

 private:
  RoundArena* arena_;
};

// Convenience aliases for the per-round scratch containers the engines
// build: constructed as locals (or re-`emplace`d members) after a
// `reset()`, dead before the next one.
template <typename T>
using ArenaVector = std::vector<T, ArenaAlloc<T>>;

template <typename K, typename V, typename Hash = std::hash<K>,
          typename Eq = std::equal_to<K>>
using ArenaUMap =
    std::unordered_map<K, V, Hash, Eq, ArenaAlloc<std::pair<const K, V>>>;

template <typename K, typename V, typename Hash = std::hash<K>,
          typename Eq = std::equal_to<K>>
ArenaUMap<K, V, Hash, Eq> make_arena_umap(RoundArena& arena,
                                          std::size_t buckets = 0) {
  return ArenaUMap<K, V, Hash, Eq>(
      buckets, Hash(), Eq(),
      ArenaAlloc<std::pair<const K, V>>(&arena));
}

}  // namespace anon
