#include "core/calendar.hpp"

// RoundCalendar is header-only (templated on the item type); this TU pins
// the build target.

namespace anon {
static_assert(sizeof(RoundCalendar<int>) > 0);
}  // namespace anon
