// Simulated linearizable (atomic) shared-memory registers with an
// adversarial step scheduler.
//
// Propositions 2 and 3 implement weak-sets FROM registers; to exercise
// their constructions under genuine concurrency we model each operation as
// a small state machine whose steps are single atomic register accesses,
// and let a seeded adversary interleave the steps of concurrent operations
// arbitrarily.  The global step counter doubles as the virtual clock for
// specification checking.
#pragma once

#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

#include "common/check.hpp"
#include "common/inplace_function.hpp"
#include "common/rng.hpp"

namespace anon {

// An array of atomic registers holding Cell values.  Every read/write is
// one indivisible scheduler step (that is what "atomic register" means).
template <typename Cell>
class SharedMemory {
 public:
  SharedMemory(std::size_t count, Cell initial)
      : cells_(count, initial) {}

  // Returns by value: a register read is a copy-out (and std::vector<bool>
  // has no stable element references anyway).
  Cell read(std::size_t i) const {
    ANON_CHECK(i < cells_.size());
    return cells_[i];
  }
  // Copy-free read access for container-valued cells (the Prop-2 snapshot
  // path): the caller merges straight out of the register storage.
  // Rejected at compile time for Cell = bool: std::vector<bool>'s const
  // operator[] yields a temporary, so view() would return a dangling
  // reference — the Prop-3 path uses read(), cheaper for bool anyway.
  const Cell& view(std::size_t i) const {
    static_assert(!std::is_same_v<Cell, bool>,
                  "vector<bool> cells have no stable element references; "
                  "use read()");
    ANON_CHECK(i < cells_.size());
    return cells_[i];
  }
  void write(std::size_t i, Cell v) {
    ANON_CHECK(i < cells_.size());
    cells_[i] = std::move(v);
  }
  // Copy-assigning write: reuses the cell's existing capacity (for
  // ValueSet cells the steady-state write allocates nothing).
  void write_from(std::size_t i, const Cell& v) {
    ANON_CHECK(i < cells_.size());
    cells_[i] = v;
  }
  std::size_t size() const { return cells_.size(); }

 private:
  std::vector<Cell> cells_;
};

// One in-flight operation: step() performs one register access and returns
// true when the operation has completed.
class StepOp {
 public:
  virtual ~StepOp() = default;
  virtual bool step() = 0;
};

// Interleaves in-flight operations: each scheduler tick picks one pending
// op (seeded-uniformly) and executes one of its steps.  Ops can be
// injected at chosen ticks; completion times are reported to the caller.
class StepScheduler {
 public:
  explicit StepScheduler(std::uint64_t seed) : rng_(seed) {}

  // Completion callbacks are small inline closures (a records pointer, an
  // index, an output slot) — stored inline, no per-op allocation.
  using DoneFn = InplaceFunction<void(std::uint64_t end_tick), 40>;

  // Registers an op to start at `start_tick` (ticks count executed steps).
  void inject(std::uint64_t start_tick, std::unique_ptr<StepOp> op,
              DoneFn done);

  // Runs until all injected ops completed; returns ticks executed.
  std::uint64_t run();

  std::uint64_t now() const { return tick_; }

 private:
  struct Pending {
    std::uint64_t start_tick;
    std::unique_ptr<StepOp> op;
    DoneFn done;
    bool started = false;
  };
  Rng rng_;
  std::uint64_t tick_ = 0;
  std::vector<Pending> ops_;
  std::vector<std::size_t> runnable_;  // per-tick scratch, capacity reused
};

}  // namespace anon
