#include "shm/register_sim.hpp"

namespace anon {

void StepScheduler::inject(std::uint64_t start_tick,
                           std::unique_ptr<StepOp> op, DoneFn done) {
  ops_.push_back({start_tick, std::move(op), std::move(done)});
}

std::uint64_t StepScheduler::run() {
  for (;;) {
    // Collect runnable ops (injected and not completed) into the reused
    // per-tick scratch buffer.
    runnable_.clear();
    bool any_future = false;
    for (std::size_t i = 0; i < ops_.size(); ++i) {
      if (!ops_[i].op) continue;  // completed
      if (ops_[i].start_tick > tick_) {
        any_future = true;
        continue;
      }
      runnable_.push_back(i);
    }
    if (runnable_.empty()) {
      if (!any_future) return tick_;
      ++tick_;  // idle tick until the next injection time
      continue;
    }
    const std::size_t pick =
        runnable_[rng_.below(runnable_.size())];
    ++tick_;
    if (ops_[pick].op->step()) {
      auto done = std::move(ops_[pick].done);
      ops_[pick].op.reset();
      if (done) done(tick_);
    }
  }
}

}  // namespace anon
